"""Empirical competitive-ratio harness for shared-buffer policies.

Every buffer policy in the registry decides, packet by packet, what to
keep in one shared buffer — exactly the online problem the competitive
analysis literature studies for shared-memory switches.  This module
measures how far each policy lands from a clairvoyant offline bound on
*deterministic adversarial* arrival patterns:

* an **arena**: a slotted shared-memory switch model.  ``N`` output
  ports share one buffer of ``B`` unit cells; each port transmits one
  cell per slot.  The policy under test is an ordinary
  :class:`~repro.queueing.base.BufferManager` observing the arena
  through the same :class:`~repro.queueing.base.PortView` protocol the
  event-driven testbed uses ("queues" = output ports), including
  ``evict_tail`` for push-out policies (LQD, SEG, DynaQ-Evict).
* an **adversary catalog** (:data:`ADVERSARIES`): deterministic arrival
  generators — bursty one-queue floods, alternating fill-drain cycles,
  the LQD lower-bound style park-then-overload construction — plus a
  seeded random adversary.
* an **offline reference bound** (:func:`clairvoyant_bound`): a
  composite relaxation upper-bounding the cells *any* clairvoyant
  policy could deliver — the minimum of total arrivals, the sum of
  per-port greedy runs with a private buffer ``B``, and the best
  single-cut bound ``served(0..t) + B + arrivals(t+1..)``.  The bound
  is a relaxation, so measured ratios upper-bound the true competitive
  ratio; ratios are always >= 1.

The empirical ratio of a run is ``bound / delivered``.  LQD is proven
at most 1.5-competitive for this model (arXiv:1207.1141); the report
asserts its measured ratio never exceeds that and flags the adversary
DynaQ suffers most under.  Grid cells fan out through the parallel
executor ("competitive" job kind) and reassemble byte-identically, so
``repro competitive --jobs N`` output matches a serial run.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Sequence

from ..metrics.stats import summarize
from ..net.packet import Packet
from ..sim.errors import ConfigurationError
from ..sim.trace import TOPIC_COMPETITIVE_ROUND, TraceBus
from .runner import scheme

#: One buffer cell, in bytes.  Policies reason in bytes; the arena
#: reasons in cells.  Any constant works — cells never fragment.
CELL_BYTES = 100

#: Simulated nanoseconds per arena slot (feeds ``PortView.now()`` for
#: time-based policies; one slot is one link-transmission time).
SLOT_NS = 1_000

#: Default policies of the report grid: the paper's scheme next to the
#: three competitive comparators and the plain tail-drop floor.
DEFAULT_POLICIES = ("dynaq", "lqd", "fb", "bshare", "seg", "dt",
                    "besteffort")


class ArenaPort(object):
    """Shared-memory switch the policy observes as a ``PortView``.

    ``num_queues`` output ports share ``buffer_cells`` cells.  The
    private ``_queue_bytes`` list and ``_total_bytes`` int are exposed
    so the managers' ``inline_hot_calls`` fast path works here exactly
    as it does on :class:`~repro.net.port.EgressPort` — FAST and
    REFERENCE perf configs observe identical state.
    """

    def __init__(self, num_queues: int, buffer_cells: int,
                 link_rate_bps: int = 10 ** 9) -> None:
        self.num_queues = num_queues
        self.buffer_bytes = buffer_cells * CELL_BYTES
        self.link_rate_bps = link_rate_bps
        self._queue_bytes = [0] * num_queues
        self._total_bytes = 0
        self._queues: List[deque] = [deque() for _ in range(num_queues)]
        self._now_ns = 0
        self.dropped_packets = 0

    # -- PortView protocol ------------------------------------------------------

    def queue_bytes(self, index: int) -> int:
        return self._queue_bytes[index]

    def total_bytes(self) -> int:
        return self._total_bytes

    def queue_weights(self) -> List[float]:
        return [1.0] * self.num_queues

    def now(self) -> int:
        return self._now_ns

    # -- datapath ---------------------------------------------------------------

    def enqueue(self, packet: Packet, queue_index: int) -> None:
        self._queues[queue_index].append(packet)
        self._queue_bytes[queue_index] += packet.size
        self._total_bytes += packet.size

    def transmit(self, queue_index: int) -> Optional[Packet]:
        queue = self._queues[queue_index]
        if not queue:
            return None
        packet = queue.popleft()
        self._queue_bytes[queue_index] -= packet.size
        self._total_bytes -= packet.size
        return packet

    def evict_tail(self, queue_index: int) -> Optional[Packet]:
        """Push-out hook for LQD / SEG / DynaQ-Evict style policies."""
        queue = self._queues[queue_index]
        if not queue:
            return None
        packet = queue.pop()
        self._queue_bytes[queue_index] -= packet.size
        self._total_bytes -= packet.size
        self.dropped_packets += 1
        return packet

    def backlog_cells(self) -> int:
        return self._total_bytes // CELL_BYTES


class ArenaResult(NamedTuple):
    """One policy's run over one arrival pattern."""

    delivered: int       # cells transmitted, horizon plus final drain
    arrivals: int        # cells the adversary offered
    dropped: int         # admission drops plus push-outs
    slots: int           # horizon length (excluding the drain)


def run_arena(policy: str, arrivals: Sequence[Sequence[int]], *,
              buffer_cells: int, rtt_ns: int = 40_000) -> ArenaResult:
    """Drive ``policy`` through the slotted arena over ``arrivals``.

    ``arrivals[t][p]`` is the number of cells arriving for port ``p``
    in slot ``t``.  Each slot admits arrivals (ports in index order,
    cells one at a time), then transmits one cell per non-empty port;
    after the horizon the buffer drains to empty, and every transmitted
    cell counts as delivered.
    """
    if not arrivals or not arrivals[0]:
        raise ConfigurationError("arrivals must cover >= 1 slot and port")
    num_queues = len(arrivals[0])
    spec = scheme(policy)
    manager = spec.make(rtt_ns=rtt_ns)
    port = ArenaPort(num_queues, buffer_cells)
    manager.attach(port)

    delivered = 0
    offered = 0
    dropped = 0
    flow = 0
    for slot, row in enumerate(arrivals):
        port._now_ns = slot * SLOT_NS
        for queue_index, count in enumerate(row):
            for _ in range(count):
                offered += 1
                flow += 1
                packet = Packet(flow, "adv", f"p{queue_index}",
                                CELL_BYTES, service_class=queue_index,
                                created_at=port._now_ns)
                before = port.dropped_packets
                decision = manager.admit(packet, queue_index)
                dropped += port.dropped_packets - before  # push-outs
                if decision.accept:
                    port.enqueue(packet, queue_index)
                    manager.on_enqueued(packet, queue_index)
                else:
                    dropped += 1
        for queue_index in range(num_queues):
            packet = port.transmit(queue_index)
            if packet is None:
                continue
            verdict = manager.on_dequeue(packet, queue_index)
            if verdict.accept:
                delivered += 1
            else:
                dropped += 1  # dequeue-time drop variants (TCN-drop)
    # Final drain: the remaining backlog leaves at one cell per port
    # per slot.  Bounded by the buffer size, so this always terminates.
    slot = len(arrivals)
    while port._total_bytes > 0:
        port._now_ns = slot * SLOT_NS
        slot += 1
        for queue_index in range(num_queues):
            packet = port.transmit(queue_index)
            if packet is None:
                continue
            verdict = manager.on_dequeue(packet, queue_index)
            if verdict.accept:
                delivered += 1
            else:
                dropped += 1
    return ArenaResult(delivered, offered, dropped, len(arrivals))


# ---------------------------------------------------------------------------
# Offline clairvoyant reference bound
# ---------------------------------------------------------------------------

def clairvoyant_bound(arrivals: Sequence[Sequence[int]],
                      buffer_cells: int) -> int:
    """Upper bound on cells *any* clairvoyant policy could deliver.

    The composite of three valid relaxations (a minimum of upper bounds
    is an upper bound):

    1. total arrivals — nothing is delivered twice;
    2. ``sum_p greedy_p`` — each port run alone with a *private* buffer
       of ``B`` cells and greedy admission, which dominates any share
       of the real shared buffer the port could have received;
    3. ``min_t [served(0..t) + B + arrivals(t+1..)]`` — deliveries up
       to slot ``t`` cannot beat the per-port greedy prefix, and
       everything after ``t`` was either buffered at ``t`` (<= ``B``)
       or arrives later.

    Relaxation 2 alone is wildly loose under simultaneous floods (every
    port cannot privately own ``B``); the cut in 3 restores the shared
    capacity there.  The composite is still a relaxation — measured
    ratios upper-bound the true competitive ratio.
    """
    if not arrivals or not arrivals[0]:
        raise ConfigurationError("arrivals must cover >= 1 slot and port")
    num_queues = len(arrivals[0])
    horizon = len(arrivals)
    # Per-port greedy with a private buffer, recording the cumulative
    # cells served by the end of each slot.
    served_prefix = [0] * horizon   # summed over ports
    greedy_total = 0
    for port in range(num_queues):
        backlog = 0
        served = 0
        for slot in range(horizon):
            backlog = min(backlog + arrivals[slot][port], buffer_cells)
            if backlog:
                backlog -= 1
                served += 1
            served_prefix[slot] += served
        greedy_total += served + backlog  # final drain
    total_arrivals = sum(sum(row) for row in arrivals)
    bound = min(total_arrivals, greedy_total)
    remaining = total_arrivals
    for slot in range(horizon):
        remaining -= sum(arrivals[slot])
        bound = min(bound,
                    served_prefix[slot] + buffer_cells + remaining)
    return bound


# ---------------------------------------------------------------------------
# Adversary catalog
# ---------------------------------------------------------------------------

Generator = Callable[[int, int, int, random.Random], List[List[int]]]


class AdversarySpec(NamedTuple):
    """One adversarial arrival generator."""

    name: str
    generate: Generator                      # (queues, cells, horizon, rng)
    default_horizon: Callable[[int, int], int]   # (queues, cells) -> slots
    seeded: bool                             # does the rng matter?


def _burst_flood(num_queues: int, buffer_cells: int, horizon: int,
                 rng: random.Random) -> List[List[int]]:
    """Port 0 takes periodic 2B-cell floods; the rest trickle 1/slot."""
    rows = []
    period = max(buffer_cells, 1)
    for slot in range(horizon):
        row = [0] + [1] * (num_queues - 1)
        if slot % period == 0:
            row[0] = 2 * buffer_cells
        rows.append(row)
    return rows


def _fill_drain(num_queues: int, buffer_cells: int, horizon: int,
                rng: random.Random) -> List[List[int]]:
    """All ports flood at 2/slot, then fall silent, alternating.

    The silent phase lasts ``B / N`` slots — long enough that only a
    policy that kept the backlog spread across ports stays
    work-conserving through it, short enough that a clairvoyant policy
    never idles (which keeps the reference bound tight).
    """
    fill = max(buffer_cells, 2)
    drain = max(buffer_cells // max(num_queues, 1), 1)
    period = fill + drain
    rows = []
    for slot in range(horizon):
        active = (slot % period) < fill
        rows.append([2 if active else 0] * num_queues)
    return rows


def _lqd_lower_bound(num_queues: int, buffer_cells: int, horizon: int,
                     rng: random.Random) -> List[List[int]]:
    """Park-then-overload: the LQD lower-bound style construction.

    Slot 0 bursts ``B`` cells to *every* port (only ``B`` fit in
    total), then all ports fall silent while the admitted backlog
    drains, then every port is overloaded at 2/slot to the horizon.
    The silent gap between drain and overload is what the offline
    relaxation cannot see through: the per-port greedy bound keeps
    every port busy straight through it, so the measured ratio on this
    instance stays well above 1.2 — a canary pinning the harness's
    sensitivity (a softened bound or arena would drive it to 1.0).
    """
    rows = [[0] * num_queues for _ in range(horizon)]
    for port in range(num_queues):
        rows[0][port] = buffer_cells
    overload_start = min((3 * buffer_cells) // max(num_queues, 1),
                         max(horizon - 1, 0))
    for slot in range(overload_start, horizon):
        for port in range(num_queues):
            rows[slot][port] = 2
    return rows


def _random_adversary(num_queues: int, buffer_cells: int, horizon: int,
                      rng: random.Random) -> List[List[int]]:
    """Seeded random overload: every port draws 0-3 cells per slot.

    The mean load (1.5x capacity) keeps the buffer contended without
    the long silences that would loosen the greedy relaxation.
    """
    return [[rng.randint(0, 3) for _ in range(num_queues)]
            for _ in range(horizon)]


def _default_horizon(num_queues: int, buffer_cells: int) -> int:
    return 8 * max(buffer_cells, 4)


def _lqd_horizon(num_queues: int, buffer_cells: int) -> int:
    # Park (B/N slots), gap, then an overload phase of ~2B/N slots.
    return (5 * max(buffer_cells, 4)) // max(num_queues, 1) + 1


ADVERSARIES: Dict[str, AdversarySpec] = {
    "burst-flood": AdversarySpec(
        "burst-flood", _burst_flood, _default_horizon, False),
    "fill-drain": AdversarySpec(
        "fill-drain", _fill_drain, _default_horizon, False),
    "lqd-lower-bound": AdversarySpec(
        "lqd-lower-bound", _lqd_lower_bound, _lqd_horizon, False),
    "random": AdversarySpec(
        "random", _random_adversary, _default_horizon, True),
}


def adversary_names() -> List[str]:
    """All registered adversary keys."""
    return sorted(ADVERSARIES)


def adversary(name: str) -> AdversarySpec:
    """Look up an adversary, mirroring :func:`~.runner.scheme` errors."""
    key = name.lower()
    if key not in ADVERSARIES:
        raise ConfigurationError(
            f"unknown adversary {name!r}; known: {sorted(ADVERSARIES)}")
    return ADVERSARIES[key]


def generate_arrivals(name: str, *, num_queues: int, buffer_cells: int,
                      horizon: int = 0, seed: int = 1) -> List[List[int]]:
    """The adversary's arrival grid (``horizon=0``: its own default)."""
    spec = adversary(name)
    if num_queues < 2:
        raise ConfigurationError(
            f"the arena needs >= 2 ports, got {num_queues}")
    if buffer_cells < num_queues:
        raise ConfigurationError(
            f"buffer_cells must be >= num_queues "
            f"({num_queues}), got {buffer_cells}")
    slots = horizon if horizon > 0 else spec.default_horizon(
        num_queues, buffer_cells)
    return spec.generate(num_queues, buffer_cells, slots,
                         random.Random(seed))


# ---------------------------------------------------------------------------
# Grid cells and the report
# ---------------------------------------------------------------------------

def run_cell(policy: str, adversary_name: str, buffer_cells: int, *,
             num_queues: int = 4, horizon: int = 0, rounds: int = 3,
             seed: int = 1) -> Dict[str, Any]:
    """One grid cell: ``rounds`` arena runs of one policy/adversary pair.

    Deterministic adversaries replay the identical pattern per round
    (zero-width CI); the seeded random adversary derives round seeds
    ``seed + i``.  The result is a plain JSON-able dict so the parallel
    executor's checkpoint replay decodes it bit-for-bit.
    """
    spec = adversary(adversary_name)
    ratios: List[float] = []
    delivered: List[int] = []
    bounds: List[int] = []
    dropped: List[int] = []
    for index in range(max(rounds, 1)):
        round_seed = seed + index if spec.seeded else seed
        arrivals = generate_arrivals(
            adversary_name, num_queues=num_queues,
            buffer_cells=buffer_cells, horizon=horizon, seed=round_seed)
        result = run_arena(policy, arrivals, buffer_cells=buffer_cells)
        bound = clairvoyant_bound(arrivals, buffer_cells)
        if result.delivered <= 0:
            raise ConfigurationError(
                f"adversary {adversary_name!r} starved policy "
                f"{policy!r}: nothing was delivered")
        ratios.append(bound / result.delivered)
        delivered.append(result.delivered)
        bounds.append(bound)
        dropped.append(result.dropped)
    return {
        "policy": policy,
        "adversary": adversary_name,
        "buffer_cells": buffer_cells,
        "num_queues": num_queues,
        "rounds": len(ratios),
        "ratios": ratios,
        "delivered": delivered,
        "bounds": bounds,
        "dropped": dropped,
    }


class CompetitiveReport(NamedTuple):
    """The full policy x adversary x buffer-size grid."""

    policies: List[str]
    adversaries: List[str]
    buffer_sizes: List[int]
    cells: List[Dict[str, Any]]     # one run_cell dict per grid point

    def cell(self, policy: str, adversary_name: str,
             buffer_cells: int) -> Optional[Dict[str, Any]]:
        for entry in self.cells:
            if (entry["policy"] == policy
                    and entry["adversary"] == adversary_name
                    and entry["buffer_cells"] == buffer_cells):
                return entry
        return None

    def worst_adversary(self, policy: str):
        """``(adversary, max ratio)`` over the policy's grid cells."""
        worst: Optional[str] = None
        worst_ratio = 0.0
        for entry in self.cells:
            if entry["policy"] != policy:
                continue
            ratio = max(entry["ratios"])
            if ratio > worst_ratio:
                worst = entry["adversary"]
                worst_ratio = ratio
        return worst, worst_ratio

    def violations(self, policy: str, limit: float) -> List[str]:
        """Human-readable cells where ``policy`` exceeded ``limit``."""
        problems = []
        for entry in self.cells:
            if entry["policy"] != policy:
                continue
            ratio = max(entry["ratios"])
            if ratio > limit:
                problems.append(
                    f"{policy} x {entry['adversary']} "
                    f"@ B={entry['buffer_cells']}: ratio {ratio:.3f} "
                    f"> {limit}")
        return problems


def run_competitive(policies: Sequence[str],
                    adversaries: Sequence[str],
                    buffer_sizes: Sequence[int], *,
                    num_queues: int = 4, horizon: int = 0,
                    rounds: int = 3, seed: int = 1,
                    jobs: int = 1, retries: int = 0,
                    checkpoint=None, resume: bool = False,
                    trace: Optional[TraceBus] = None
                    ) -> CompetitiveReport:
    """The full grid through the parallel executor, in grid order.

    Serial (``jobs=1``) and parallel runs marshal every cell through
    the same JSON encoding and reassemble in grid order, so the report
    — and the rendered table — is byte-identical either way.  Trace
    events on ``competitive.round`` are published here in the parent,
    one per finished round, with a deterministic sequence number as
    their time, after the grid completes (workers cannot publish
    across the process boundary).
    """
    from .parallel import JobSpec, job_key, parallel_map

    policies = list(policies)
    adversaries = list(adversaries)
    buffer_sizes = list(buffer_sizes)
    if not policies or not adversaries or not buffer_sizes:
        raise ConfigurationError(
            "the competitive grid needs >= 1 policy, adversary, and "
            "buffer size")
    for name in policies:
        scheme(name)       # fail fast with the valid-policy list
    for name in adversaries:
        adversary(name)
    specs = []
    for policy in policies:
        for adversary_name in adversaries:
            for buffer_cells in buffer_sizes:
                params = {
                    "policy": policy, "adversary": adversary_name,
                    "buffer_cells": buffer_cells,
                    "num_queues": num_queues, "horizon": horizon,
                    "rounds": rounds, "seed": seed,
                }
                label = f"{policy}x{adversary_name}@{buffer_cells}"
                specs.append(JobSpec(
                    job_key("competitive", params, label=label),
                    "competitive", params, seed=seed))
    outcomes = parallel_map(specs, jobs=jobs, retries=retries,
                            checkpoint=checkpoint, resume=resume,
                            trace=trace)
    cells: List[Dict[str, Any]] = []
    sequence = 0
    for outcome in outcomes:
        if not outcome.ok:
            raise ConfigurationError(
                f"competitive cell {outcome.key!r} failed: "
                f"{outcome.error}")
        cells.append(outcome.value)
        if trace is not None:
            entry = outcome.value
            for index, ratio in enumerate(entry["ratios"]):
                sequence += 1
                trace.publish(
                    TOPIC_COMPETITIVE_ROUND, time=sequence,
                    detail=(f"{entry['policy']} x {entry['adversary']} "
                            f"B={entry['buffer_cells']} "
                            f"round={index} ratio={ratio:.4f}"))
    return CompetitiveReport(policies, adversaries, buffer_sizes, cells)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def report_lines(report: CompetitiveReport, *,
                 lqd_limit: float = 1.5) -> List[str]:
    """The report table plus worst-adversary and assertion summaries."""
    lines = [
        "empirical competitive ratios "
        "(bound / delivered, mean over rounds +- CI95)",
        "policy".ljust(12) + "adversary".ljust(18) + "B(cells)".rjust(9)
        + "ratio".rjust(8) + "ci95".rjust(8) + "delivered".rjust(11)
        + "bound".rjust(8),
    ]
    for entry in report.cells:
        stats = summarize(entry["ratios"])
        lines.append(
            entry["policy"].ljust(12)
            + entry["adversary"].ljust(18)
            + str(entry["buffer_cells"]).rjust(9)
            + f"{stats.mean:.3f}".rjust(8)
            + f"{stats.ci95:.3f}".rjust(8)
            + str(max(entry["delivered"])).rjust(11)
            + str(max(entry["bounds"])).rjust(8))
    lines.append("")
    for policy in report.policies:
        worst, ratio = report.worst_adversary(policy)
        if worst is not None:
            flag = "  <- worst adversary" if policy == "dynaq" else ""
            lines.append(f"{policy}: worst adversary {worst} "
                         f"(ratio {ratio:.3f}){flag}")
    if "lqd" in report.policies:
        problems = report.violations("lqd", lqd_limit)
        if problems:
            lines.append("")
            lines.append(f"LQD exceeded its {lqd_limit}-competitive "
                         "guarantee:")
            lines.extend("  " + line for line in problems)
        else:
            lines.append(f"lqd: all ratios <= {lqd_limit} "
                         "(proven guarantee holds)")
    return lines
