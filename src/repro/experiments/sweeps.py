"""Generic parameter sweeps with multi-seed statistics.

Glue between the per-figure runners and the stats module: declare a grid
of parameter values, run an experiment callable at every grid point
(optionally replicated over seeds), and get back a tidy list of records
ready for printing or CSV export.

Sweeps can fan out to worker processes (``jobs > 1``) through
:mod:`repro.experiments.parallel`; records come back in grid/seed order
either way, so serial and parallel runs of the same sweep are
byte-identical.
"""

from __future__ import annotations

import itertools
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..metrics.stats import Summary, summarize
from ..sim.errors import SimulationError
from ..sim.trace import TraceBus

PathLike = Union[str, Path]


def grid_points(grid: Dict[str, Sequence]) -> List[Dict]:
    """Cartesian product of a parameter grid, as keyword dicts.

    Parameter order follows the caller's declaration (dict insertion
    order), not alphabetical order, so downstream tables and CSV columns
    read the way the sweep was written.
    """
    if not grid:
        return [{}]
    names = list(grid)
    points = []
    for values in itertools.product(*(grid[name] for name in names)):
        points.append(dict(zip(names, values)))
    return points


def run_sweep(experiment: Callable[..., Dict[str, Optional[float]]],
              grid: Dict[str, Sequence], *,
              seeds: Sequence[int] = (1,),
              seed_param: str = "seed",
              jobs: int = 1,
              retries: int = 0,
              checkpoint: Optional[PathLike] = None,
              resume: bool = False,
              trace: Optional[TraceBus] = None) -> List[Dict]:
    """Run ``experiment(**point, seed=s)`` over the grid x seeds.

    ``experiment`` returns a flat metric dict (``None`` values allowed).
    The result is one record per grid point: the parameters plus a
    :class:`~repro.metrics.stats.Summary` per metric (metrics missing
    from every replication are omitted) and a ``failures`` count of
    replications that raised :class:`~repro.sim.errors.SimulationError`
    — one failing seed no longer aborts the sweep.

    ``jobs > 1`` (or a ``checkpoint``/``resume`` request) routes every
    (point, seed) replication through
    :func:`repro.experiments.parallel.parallel_map`: ``experiment`` must
    then be a module-level function (workers re-import it by name), and
    an interrupted sweep restarted with ``resume=True`` replays finished
    replications from the checkpoint file.  Records are identical to a
    serial run either way.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    points = grid_points(grid)
    if jobs == 1 and checkpoint is None and not resume:
        per_point = [_run_point_serial(experiment, point, seeds, seed_param)
                     for point in points]
    else:
        per_point = _run_points_parallel(
            experiment, points, seeds, seed_param, jobs=jobs,
            retries=retries, checkpoint=checkpoint, resume=resume,
            trace=trace)
    return [_assemble_record(point, metrics_per_seed)
            for point, metrics_per_seed in zip(points, per_point)]


def _run_point_serial(experiment, point, seeds, seed_param):
    outcomes = []
    for seed in seeds:
        try:
            outcomes.append(experiment(**point, **{seed_param: seed}))
        except SimulationError:
            outcomes.append(None)
    return outcomes


def _run_points_parallel(experiment, points, seeds, seed_param, *,
                         jobs, retries, checkpoint, resume, trace):
    from .parallel import JobSpec, callable_target, job_key, parallel_map
    target = callable_target(experiment)
    specs = []
    for index, point in enumerate(points):
        for replicate, seed in enumerate(seeds):
            kwargs = dict(point)
            kwargs[seed_param] = seed
            params = {"target": target, "kwargs": kwargs}
            specs.append(JobSpec(
                job_key("callable", params,
                        label=f"point{index}.{replicate}"),
                "callable", params, seed=seed,
                seed_path=("kwargs", seed_param)))
    outcomes = parallel_map(specs, jobs=jobs, retries=retries,
                            checkpoint=checkpoint, resume=resume,
                            trace=trace)
    cursor = iter(outcomes)
    return [[next(cursor).value for _ in seeds] for _ in points]


def _assemble_record(point: Dict, metrics_per_seed: Sequence[Optional[Dict]]
                     ) -> Dict:
    """Fold one grid point's replications into a sweep record."""
    collected: Dict[str, List[float]] = {}
    failures = 0
    for metrics in metrics_per_seed:
        if metrics is None:
            failures += 1
            continue
        for name, value in metrics.items():
            if value is not None:
                collected.setdefault(name, []).append(float(value))
    record = dict(point)
    record["metrics"] = {name: summarize(values)
                         for name, values in collected.items()}
    record["failures"] = failures
    return record


def sweep_table(records: List[Dict], *, metric: str, title: str) -> str:
    """Format one metric of a sweep as parameter columns + mean +/- CI.

    Parameter columns keep declaration order and are the union across
    all records (a record missing a parameter renders ``-``), so ragged
    sweeps don't silently drop columns that happen to be absent from the
    first record.
    """
    if not records:
        return title
    param_names: List[str] = []
    for record in records:
        for name in record:
            if name not in ("metrics", "failures") \
                    and name not in param_names:
                param_names.append(name)
    lines = [title,
             "".join(name.rjust(12) for name in param_names)
             + "mean".rjust(12) + "+/-95%".rjust(10) + "n".rjust(4)]
    for record in records:
        row = "".join(str(record.get(name, "-")).rjust(12)
                      for name in param_names)
        summary: Optional[Summary] = record["metrics"].get(metric)
        if summary is None:
            row += "-".rjust(12) + "-".rjust(10) + "-".rjust(4)
        else:
            row += (f"{summary.mean:.3f}".rjust(12)
                    + f"{summary.ci95:.3f}".rjust(10)
                    + str(summary.count).rjust(4))
        lines.append(row)
    return "\n".join(lines)
