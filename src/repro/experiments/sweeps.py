"""Generic parameter sweeps with multi-seed statistics.

Glue between the per-figure runners and the stats module: declare a grid
of parameter values, run an experiment callable at every grid point
(optionally replicated over seeds), and get back a tidy list of records
ready for printing or CSV export.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Sequence

from ..metrics.stats import Summary, summarize


def grid_points(grid: Dict[str, Sequence]) -> List[Dict]:
    """Cartesian product of a parameter grid, as keyword dicts."""
    if not grid:
        return [{}]
    names = sorted(grid)
    points = []
    for values in itertools.product(*(grid[name] for name in names)):
        points.append(dict(zip(names, values)))
    return points


def run_sweep(experiment: Callable[..., Dict[str, Optional[float]]],
              grid: Dict[str, Sequence], *,
              seeds: Sequence[int] = (1,),
              seed_param: str = "seed") -> List[Dict]:
    """Run ``experiment(**point, seed=s)`` over the grid x seeds.

    ``experiment`` returns a flat metric dict (``None`` values allowed).
    The result is one record per grid point: the parameters plus a
    :class:`~repro.metrics.stats.Summary` per metric (metrics missing
    from every replication are omitted).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    records = []
    for point in grid_points(grid):
        collected: Dict[str, List[float]] = {}
        for seed in seeds:
            metrics = experiment(**point, **{seed_param: seed})
            for name, value in metrics.items():
                if value is not None:
                    collected.setdefault(name, []).append(float(value))
        record = dict(point)
        record["metrics"] = {name: summarize(values)
                             for name, values in collected.items()}
        records.append(record)
    return records


def sweep_table(records: List[Dict], *, metric: str, title: str) -> str:
    """Format one metric of a sweep as parameter columns + mean +/- CI."""
    if not records:
        return title
    param_names = sorted(k for k in records[0] if k != "metrics")
    lines = [title,
             "".join(name.rjust(12) for name in param_names)
             + "mean".rjust(12) + "+/-95%".rjust(10) + "n".rjust(4)]
    for record in records:
        row = "".join(str(record[name]).rjust(12)
                      for name in param_names)
        summary: Optional[Summary] = record["metrics"].get(metric)
        if summary is None:
            row += "-".rjust(12) + "-".rjust(10) + "-".rjust(4)
        else:
            row += (f"{summary.mean:.3f}".rjust(12)
                    + f"{summary.ci95:.3f}".rjust(10)
                    + str(summary.count).rjust(4))
        lines.append(row)
    return "\n".join(lines)
