"""Chaos runs: isolation under injected faults (``repro chaos``).

A chaos run replays one :class:`~repro.faults.FaultSchedule` against the
standard testbed bulk-flow scenario and reports how much isolation a
scheme loses while the faults are active.  The headline numbers per
scheme:

* **invariant violations** — ``sum(T_i) != B`` occurrences recorded by
  the :class:`~repro.faults.ThresholdInvariantMonitor` (the paper's
  §III-B equality must hold across flaps, crashes, and
  reconfigurations; any violation fails the run);
* **Jain fairness before / during / after** the fault window — the
  isolation-degradation measure (a protocol-independent scheme should
  recover its pre-fault fairness after the last recovery).

Runs are hardened: a :class:`~repro.faults.ScenarioWatchdog` bounds the
wall clock, and a tripped watchdog yields a *partial* result (metrics up
to the abort) rather than an exception, so a sweep across schemes always
completes.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence

from ..faults import (
    FaultController,
    FaultSchedule,
    ScenarioWatchdog,
    ThresholdInvariantMonitor,
)
from ..sim.randomness import RandomStreams
from ..sim.trace import TraceBus
from ..sim.units import seconds
from .runner import RunOutcome, run_resilient
from .testbed import (
    DEFAULT_CONFIG,
    TestbedConfig,
    ThroughputResult,
    _bulk_throughput_run,
)


class ChaosResult(NamedTuple):
    """One scheme's behaviour under one fault schedule."""

    scheme: str
    schedule: str
    result: Optional[ThroughputResult]  # partial when aborted
    aborted: Optional[str]              # watchdog reason, None = clean run
    injected: int                       # fault actions fired
    recovered: int                      # recovery actions fired
    checks: int                         # threshold events examined
    violations: int                     # sum(T_i) != B occurrences
    jain_before: float                  # fairness before the first fault
    jain_during: float                  # fairness inside the fault window
    jain_after: float                   # fairness after the last recovery

    @property
    def ok(self) -> bool:
        """Clean completion with the invariant intact."""
        return self.aborted is None and self.violations == 0

    @property
    def degradation(self) -> float:
        """Fairness lost while the faults were active (0 = none)."""
        return max(0.0, self.jain_before - self.jain_during)


def run_chaos(scheme_name: str, schedule: FaultSchedule, *,
              num_queues: int = 4, flows_per_queue: int = 4,
              duration_s: float = 0.5, sample_interval_s: float = 0.025,
              seed: int = 1, wall_budget_s: Optional[float] = 120.0,
              config: TestbedConfig = DEFAULT_CONFIG,
              trace: Optional[TraceBus] = None) -> ChaosResult:
    """Run the bulk-flow testbed scenario under ``schedule``.

    Every queue carries ``flows_per_queue`` TCP flows from its own sender
    host toward h0, so queue-level fairness is meaningful before, during,
    and after the fault window.  The run is stretched automatically if
    the schedule outlasts ``duration_s`` (faults must finish inside the
    measured window, with slack to observe the recovery).
    """
    duration_ns = max(seconds(duration_s),
                      int(schedule.last_event_ns() * 1.25))
    streams = RandomStreams(seed)
    holder = {}

    def attach(net):
        controller = FaultController(
            net, schedule, rng=streams.stream("faults"))
        controller.arm()
        monitor = ThresholdInvariantMonitor(
            net.trace, expected=config.buffer_bytes)
        watchdog = ScenarioWatchdog(net.sim, wall_budget_s=wall_budget_s)
        watchdog.start()
        holder.update(controller=controller, monitor=monitor,
                      watchdog=watchdog)

    result = _bulk_throughput_run(
        scheme_name,
        flows_per_queue=[flows_per_queue] * num_queues,
        quanta=[config.quantum_bytes] * num_queues,
        stop_times_ns=None, duration_ns=duration_ns,
        sample_interval_ns=seconds(sample_interval_s), config=config,
        trace=trace, on_network=attach)

    controller: FaultController = holder["controller"]
    monitor: ThresholdInvariantMonitor = holder["monitor"]
    watchdog: ScenarioWatchdog = holder["watchdog"]
    monitor.close()
    watchdog.cancel()

    active = list(range(num_queues))
    events = schedule.events
    window_start = events[0].time_ns if events else duration_ns
    window_end = min(schedule.last_event_ns(), duration_ns)
    return ChaosResult(
        scheme=result.scheme, schedule=schedule.name or "faults",
        result=result, aborted=watchdog.tripped,
        injected=controller.injected, recovered=controller.recovered,
        checks=monitor.checked, violations=monitor.violation_count,
        jain_before=result.jain(active, 0, window_start),
        jain_during=result.jain(active, window_start, window_end),
        jain_after=result.jain(active, window_end, None))


def run_chaos_sweep(scheme_names: Sequence[str],
                    schedule: FaultSchedule, *, seed: int = 1,
                    retries: int = 1, jobs: int = 1,
                    checkpoint=None, resume: bool = False,
                    trace: Optional[TraceBus] = None,
                    **kwargs) -> List[RunOutcome]:
    """:func:`run_chaos` per scheme with retry-with-reseed hardening.

    Returns one :class:`~repro.experiments.runner.RunOutcome` per scheme;
    an outcome's ``result`` is the :class:`ChaosResult` (or ``None`` when
    every attempt died with a :class:`~repro.sim.errors.SimulationError`).
    Watchdog trips do *not* raise — they surface as partial
    ``ChaosResult``s — so retries only happen on genuine errors.

    ``jobs > 1`` (or a ``checkpoint``/``resume`` request) runs each
    scheme in a crash-isolated worker process via
    :func:`repro.experiments.parallel.parallel_map`, with the same
    retry-with-:func:`~repro.experiments.runner.reseed` semantics and
    byte-identical outcomes; remaining ``kwargs`` must then be
    JSON-serialisable, and ``trace`` carries only ``parallel.job``
    lifecycle events (worker simulations cannot publish across the
    process boundary).
    """
    if jobs == 1 and checkpoint is None and not resume:
        return run_resilient(
            lambda name, attempt_seed: run_chaos(
                name, schedule, seed=attempt_seed, trace=trace, **kwargs),
            scheme_names, seed=seed, retries=retries)
    from .parallel import JobSpec, job_key, parallel_map
    specs = []
    for name in scheme_names:
        params = {"scheme": name, "schedule": schedule.to_dict(),
                  "seed": seed, **kwargs}
        specs.append(JobSpec(job_key("chaos", params, label=name),
                             "chaos", params, seed=seed))
    outcomes = parallel_map(specs, jobs=jobs, retries=retries,
                            checkpoint=checkpoint, resume=resume,
                            trace=trace)
    return [RunOutcome(name, outcome.value, outcome.error,
                       outcome.attempts, outcome.seed)
            for name, outcome in zip(scheme_names, outcomes)]
