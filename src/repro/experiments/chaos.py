"""Chaos runs: isolation under injected faults (``repro chaos``).

A chaos run replays one :class:`~repro.faults.FaultSchedule` against the
standard testbed bulk-flow scenario and reports how much isolation a
scheme loses while the faults are active.  The headline numbers per
scheme:

* **invariant violations** — ``sum(T_i) != B`` occurrences recorded by
  the :class:`~repro.faults.ThresholdInvariantMonitor` (the paper's
  §III-B equality must hold across flaps, crashes, and
  reconfigurations; any violation fails the run);
* **Jain fairness before / during / after** the fault window — the
  isolation-degradation measure (a protocol-independent scheme should
  recover its pre-fault fairness after the last recovery).

Runs are hardened: a :class:`~repro.faults.ScenarioWatchdog` bounds the
wall clock, and a tripped watchdog yields a *partial* result (metrics up
to the abort) rather than an exception, so a sweep across schemes always
completes.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence

from ..faults import (
    FaultController,
    FaultSchedule,
    ScenarioWatchdog,
    ThresholdInvariantMonitor,
)
from ..sim.randomness import RandomStreams
from ..sim.trace import TraceBus
from ..sim.units import seconds
from ..snapshot import (
    SimWorld,
    SnapshotPolicy,
    acquire_world,
    run_world,
    write_triage_bundle,
)
from .runner import RunOutcome, run_resilient, scheme
from .testbed import (
    DEFAULT_CONFIG,
    TestbedConfig,
    ThroughputResult,
    _prepare_bulk,
)


class ChaosResult(NamedTuple):
    """One scheme's behaviour under one fault schedule."""

    scheme: str
    schedule: str
    result: Optional[ThroughputResult]  # partial when aborted
    aborted: Optional[str]              # watchdog reason, None = clean run
    injected: int                       # fault actions fired
    recovered: int                      # recovery actions fired
    checks: int                         # threshold events examined
    violations: int                     # sum(T_i) != B occurrences
    jain_before: float                  # fairness before the first fault
    jain_during: float                  # fairness inside the fault window
    jain_after: float                   # fairness after the last recovery
    triage_bundle: Optional[str] = None  # bundle dir on violation/abort

    @property
    def ok(self) -> bool:
        """Clean completion with the invariant intact."""
        return self.aborted is None and self.violations == 0

    @property
    def degradation(self) -> float:
        """Fairness lost while the faults were active (0 = none)."""
        return max(0.0, self.jain_before - self.jain_during)


def run_chaos(scheme_name: str, schedule: FaultSchedule, *,
              num_queues: int = 4, flows_per_queue: int = 4,
              duration_s: float = 0.5, sample_interval_s: float = 0.025,
              seed: int = 1, wall_budget_s: Optional[float] = 120.0,
              config: TestbedConfig = DEFAULT_CONFIG,
              trace: Optional[TraceBus] = None,
              snapshot: Optional[SnapshotPolicy] = None) -> ChaosResult:
    """Run the bulk-flow testbed scenario under ``schedule``.

    Every queue carries ``flows_per_queue`` TCP flows from its own sender
    host toward h0, so queue-level fairness is meaningful before, during,
    and after the fault window.  The run is stretched automatically if
    the schedule outlasts ``duration_s`` (faults must finish inside the
    measured window, with slack to observe the recovery).

    The harness (controller, invariant monitor, watchdog) lives inside
    the experiment world's state, so autosaves capture it and a restored
    chaos run keeps its fault schedule, violation counts, and remaining
    watchdog budget.  When ``snapshot.triage_dir`` is set, a watchdog
    abort or an invariant violation leaves a triage bundle whose path is
    recorded in the result.
    """
    duration_ns = max(seconds(duration_s),
                      int(schedule.last_event_ns() * 1.25))

    def build() -> SimWorld:
        streams = RandomStreams(seed)
        world = _prepare_bulk(
            scheme_name,
            flows_per_queue=[flows_per_queue] * num_queues,
            quanta=[config.quantum_bytes] * num_queues,
            stop_times_ns=None, duration_ns=duration_ns,
            sample_interval_ns=seconds(sample_interval_s), config=config,
            trace=trace)
        controller = FaultController(
            world.net, schedule, rng=streams.stream("faults"))
        controller.arm()
        monitor = ThresholdInvariantMonitor(
            world.net.trace, expected=config.buffer_bytes)
        watchdog = ScenarioWatchdog(world.net.sim,
                                    wall_budget_s=wall_budget_s)
        watchdog.start()
        world.kind = "chaos"
        world.watchdog = watchdog
        world.state.update(controller=controller, monitor=monitor)
        world.meta["schedule"] = schedule.name or "faults"
        return world

    world = acquire_world(snapshot, "chaos", build)
    run_world(world, snapshot)
    result = world.finish(world)

    controller: FaultController = world.state["controller"]
    monitor: ThresholdInvariantMonitor = world.state["monitor"]
    watchdog: ScenarioWatchdog = world.watchdog
    monitor.close()
    watchdog.cancel()

    triage_path = world.last_triage  # set by run_world on watchdog trip
    if (triage_path is None and monitor.violation_count
            and snapshot is not None and snapshot.triage_dir is not None):
        triage_path = str(write_triage_bundle(
            snapshot.triage_dir, world=world,
            reason="invariant-violation"))
    if world.restored:
        world.close_recorders()

    active = list(range(num_queues))
    events = schedule.events
    window_start = events[0].time_ns if events else duration_ns
    window_end = min(schedule.last_event_ns(), duration_ns)
    return ChaosResult(
        scheme=result.scheme, schedule=schedule.name or "faults",
        result=result, aborted=watchdog.tripped,
        injected=controller.injected, recovered=controller.recovered,
        checks=monitor.checked, violations=monitor.violation_count,
        jain_before=result.jain(active, 0, window_start),
        jain_during=result.jain(active, window_start, window_end),
        jain_after=result.jain(active, window_end, None),
        triage_bundle=triage_path)


def run_chaos_sweep(scheme_names: Sequence[str],
                    schedule: FaultSchedule, *, seed: int = 1,
                    retries: int = 1, jobs: int = 1,
                    checkpoint=None, resume: bool = False,
                    trace: Optional[TraceBus] = None,
                    snapshot: Optional[SnapshotPolicy] = None,
                    autosave_every_ns: Optional[int] = None,
                    autosave_dir=None,
                    **kwargs) -> List[RunOutcome]:
    """:func:`run_chaos` per scheme with retry-with-reseed hardening.

    Returns one :class:`~repro.experiments.runner.RunOutcome` per scheme;
    an outcome's ``result`` is the :class:`ChaosResult` (or ``None`` when
    every attempt died with a :class:`~repro.sim.errors.SimulationError`).
    Watchdog trips do *not* raise — they surface as partial
    ``ChaosResult``s — so retries only happen on genuine errors.

    ``jobs > 1`` (or a ``checkpoint``/``resume`` request) runs each
    scheme in a crash-isolated worker process via
    :func:`repro.experiments.parallel.parallel_map`, with the same
    retry-with-:func:`~repro.experiments.runner.reseed` semantics and
    byte-identical outcomes; remaining ``kwargs`` must then be
    JSON-serialisable, and ``trace`` carries only ``parallel.job``
    lifecycle events (worker simulations cannot publish across the
    process boundary).
    """
    for name in scheme_names:
        scheme(name)  # fail fast with the valid-policy list
    if jobs == 1 and checkpoint is None and not resume:
        return run_resilient(
            lambda name, attempt_seed: run_chaos(
                name, schedule, seed=attempt_seed, trace=trace,
                snapshot=snapshot, **kwargs),
            scheme_names, seed=seed, retries=retries)
    from .parallel import JobSpec, job_key, parallel_map
    specs = []
    for name in scheme_names:
        params = {"scheme": name, "schedule": schedule.to_dict(),
                  "seed": seed, **kwargs}
        specs.append(JobSpec(job_key("chaos", params, label=name),
                             "chaos", params, seed=seed))
    outcomes = parallel_map(specs, jobs=jobs, retries=retries,
                            checkpoint=checkpoint, resume=resume,
                            trace=trace,
                            autosave_every_ns=autosave_every_ns,
                            autosave_dir=autosave_dir)
    return [RunOutcome(name, outcome.value, outcome.error,
                       outcome.attempts, outcome.seed)
            for name, outcome in zip(scheme_names, outcomes)]
