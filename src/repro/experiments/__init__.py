"""Experiment harness: per-figure scenario runners and report printers."""

from . import incast, parallel, report, runner, simulation, sweeps, testbed
from .runner import buffer_factory, scheme, scheme_names, transport_for

__all__ = [
    "incast",
    "parallel",
    "report",
    "runner",
    "simulation",
    "sweeps",
    "testbed",
    "buffer_factory",
    "scheme",
    "scheme_names",
    "transport_for",
]
