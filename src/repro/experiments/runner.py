"""Scheme registry and shared experiment plumbing.

An experiment names a *scheme* ("dynaq", "besteffort", "pql", "tcn", ...);
this module turns the name into per-port buffer-manager factories plus the
default end-host transport the paper pairs with it (TCP for drop-based
schemes, DCTCP for ECN-based ones).
"""

from __future__ import annotations

import hashlib
import time
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Sequence

from ..core.dynaq import DynaQBuffer
from ..core.ecn_mode import DynaQECNBuffer
from ..core.eviction import DynaQEvictBuffer
from ..queueing.base import BufferManager
from ..queueing.besteffort import BestEffortBuffer
from ..queueing.bshare import BShareBuffer
from ..queueing.codel import CoDelBuffer
from ..queueing.dynamic_threshold import DynamicThresholdBuffer
from ..queueing.fb import FBBuffer
from ..queueing.lqd import LQDBuffer
from ..queueing.mqecn import MQECNBuffer
from ..queueing.perqueue_ecn import PerQueueECNBuffer
from ..queueing.pmsb import PMSBBuffer
from ..queueing.pql import PQLBuffer
from ..queueing.red import REDBuffer
from ..queueing.segregation import SegregatedBuffer
from ..queueing.tcn import TCNBuffer
from ..sim.errors import ConfigurationError, SimulationError
from ..transport.registry import sender_class


class SchemeSpec(NamedTuple):
    """How to instantiate one buffer-management scheme."""

    name: str
    make: Callable[..., BufferManager]   # kwargs: rtt_ns
    transport: str                       # default end-host protocol
    ecn: bool                            # switch-side marking?


_SCHEMES: Dict[str, SchemeSpec] = {
    "dynaq": SchemeSpec(
        "DynaQ", lambda *, rtt_ns: DynaQBuffer(), "tcp", False),
    "dynaq-evict": SchemeSpec(
        "DynaQ-Evict", lambda *, rtt_ns: DynaQEvictBuffer(), "tcp", False),
    "dynaq-tournament": SchemeSpec(
        "DynaQ(tournament)",
        lambda *, rtt_ns: DynaQBuffer(victim_search="tournament"),
        "tcp", False),
    "besteffort": SchemeSpec(
        "BestEffort", lambda *, rtt_ns: BestEffortBuffer(), "tcp", False),
    "pql": SchemeSpec(
        "PQL", lambda *, rtt_ns: PQLBuffer(), "tcp", False),
    "fb": SchemeSpec(
        "FB", lambda *, rtt_ns: FBBuffer(), "tcp", False),
    "bshare": SchemeSpec(
        "BShare", lambda *, rtt_ns: BShareBuffer(), "tcp", False),
    "lqd": SchemeSpec(
        "LQD", lambda *, rtt_ns: LQDBuffer(), "tcp", False),
    "seg": SchemeSpec(
        "SEG", lambda *, rtt_ns: SegregatedBuffer(), "tcp", False),
    "red": SchemeSpec(
        "RED", lambda *, rtt_ns: REDBuffer(), "dctcp", True),
    "red-drop": SchemeSpec(
        "RED-drop", lambda *, rtt_ns: REDBuffer(ecn=False), "tcp", False),
    "codel": SchemeSpec(
        "CoDel", lambda *, rtt_ns: CoDelBuffer(), "dctcp", True),
    "dt": SchemeSpec(
        "DT", lambda *, rtt_ns: DynamicThresholdBuffer(), "tcp", False),
    "tcn": SchemeSpec(
        "TCN", lambda *, rtt_ns: TCNBuffer(rtt_ns=rtt_ns), "dctcp", True),
    "tcn-drop": SchemeSpec(
        "TCN-drop",
        lambda *, rtt_ns: TCNBuffer(rtt_ns=rtt_ns, drop_variant=True),
        "tcp", False),
    "mqecn": SchemeSpec(
        "MQ-ECN", lambda *, rtt_ns: MQECNBuffer(rtt_ns=rtt_ns),
        "dctcp", True),
    "pmsb": SchemeSpec(
        "PMSB", lambda *, rtt_ns: PMSBBuffer(rtt_ns=rtt_ns), "dctcp", True),
    "perqueue-ecn": SchemeSpec(
        "PerQueueECN", lambda *, rtt_ns: PerQueueECNBuffer(rtt_ns=rtt_ns),
        "dctcp", True),
    "dynaq-ecn": SchemeSpec(
        "DynaQ-ECN", lambda *, rtt_ns: DynaQECNBuffer(rtt_ns=rtt_ns),
        "dctcp", True),
}


def scheme(name: str) -> SchemeSpec:
    """Look up a scheme spec by its registry key (case-insensitive).

    Raises :class:`~repro.errors.ConfigurationError` (not a bare
    ``KeyError``) for unknown names, so CLI paths — ``repro chaos``,
    sweep tables — render the valid-policy list instead of a traceback.
    """
    key = name.lower()
    if key not in _SCHEMES:
        raise ConfigurationError(
            f"unknown scheme {name!r}; known: {sorted(_SCHEMES)}")
    return _SCHEMES[key]


def scheme_names() -> List[str]:
    """All registered scheme keys."""
    return sorted(_SCHEMES)


def buffer_factory(name: str, *, rtt_ns: int) -> Callable[[], BufferManager]:
    """A zero-argument factory producing fresh managers for each port."""
    spec = scheme(name)
    return lambda: spec.make(rtt_ns=rtt_ns)


def transport_for(name: str):
    """The sender class the paper pairs with the scheme."""
    return sender_class(scheme(name).transport)


# ---------------------------------------------------------------------------
# Scenario registry: one uniform entry point per named experiment, used by
# the telemetry-aware CLI paths (``--trace-out``, ``repro profile``).
# Imports are deferred because the experiment modules import this one.
# ---------------------------------------------------------------------------

SCENARIO_NAMES = ("convergence", "motivation", "fair-sharing", "weighted",
                  "protocol-mix", "incast", "static-sim")


def scenario_names() -> List[str]:
    """Scenarios runnable through :func:`run_scenario`."""
    return list(SCENARIO_NAMES)


def run_scenario(name: str, scheme_name: str, *, duration_s: float = 0.2,
                 sim=None, trace=None, **kwargs):
    """Run one named scenario with uniform knobs.

    ``duration_s`` maps onto whatever time parameter the scenario uses
    (total duration, stop-schedule time unit, or incast horizon), scaled
    the way each scenario's own CLI subcommand scales it.  ``sim`` and
    ``trace`` are forwarded so callers can attach a profiler or a
    telemetry session; remaining ``kwargs`` pass through verbatim.
    """
    from . import incast, simulation, testbed
    duration = max(duration_s, 1e-3)
    if name == "convergence":
        return testbed.run_convergence(
            scheme_name, duration_s=duration,
            sample_interval_s=duration / 10, sim=sim, trace=trace, **kwargs)
    if name == "motivation":
        return testbed.run_motivation(
            scheme_name, duration_s=duration,
            sample_interval_s=duration / 8, sim=sim, trace=trace, **kwargs)
    if name == "fair-sharing":
        unit = duration / 5.5
        return testbed.run_fair_sharing(
            scheme_name, time_unit_s=unit, sample_interval_s=unit / 4,
            sim=sim, trace=trace, **kwargs)
    if name == "weighted":
        return testbed.run_weighted_sharing(
            scheme_name, duration_s=duration,
            sample_interval_s=duration / 10, sim=sim, trace=trace, **kwargs)
    if name == "protocol-mix":
        unit = duration / 5.5
        return testbed.run_protocol_mix(
            scheme_name, time_unit_s=unit, sample_interval_s=unit / 4,
            sim=sim, trace=trace, **kwargs)
    if name == "incast":
        return incast.run_incast(
            scheme_name, horizon_s=duration, sim=sim, trace=trace, **kwargs)
    if name == "static-sim":
        duration_ms = duration * 1e3
        return simulation.run_static_sim(
            scheme_name, duration_ms=duration_ms,
            sample_interval_ms=duration_ms / 10,
            first_stop_ms=duration_ms / 3, stop_step_ms=duration_ms / 12,
            sim=sim, trace=trace, **kwargs)
    raise KeyError(
        f"unknown scenario {name!r}; known: {list(SCENARIO_NAMES)}")


# ---------------------------------------------------------------------------
# Resilient sweeps: retry-with-reseed plus graceful partial results, so one
# wedged scheme cannot take a whole comparison run down with it.
# ---------------------------------------------------------------------------

class RunOutcome(NamedTuple):
    """One scheme's result (or failure) from a resilient sweep."""

    scheme: str
    result: Any                 # the experiment's result, or None on failure
    error: Optional[str]        # str(exception) when every attempt failed
    attempts: int               # 1 = first try succeeded
    seed: int                   # seed of the last attempt

    @property
    def ok(self) -> bool:
        return self.error is None


def reseed(seed: int, attempt: int) -> int:
    """The deterministic retry seed for ``attempt`` (attempt 1 = ``seed``).

    A fixed affine step rather than anything random: two operators
    retrying the same failing run must land on the same replacement
    seeds, or "it passed on retry" stops being a reproducible statement.
    """
    return seed + 7919 * (attempt - 1)


def retry_backoff(key: str, attempt: int, *, base_s: float,
                  cap_s: float = 30.0) -> float:
    """Deterministic exponential backoff with per-key jitter, in seconds.

    Attempt 1 (the first try) never waits.  Attempt ``k >= 2`` waits
    ``base_s * 2**(k-2)``, scaled by a jitter factor in ``[0.5, 1.5)``
    derived by hashing ``key`` and ``attempt`` — so a thundering herd of
    retrying jobs spreads out, yet two operators replaying the same
    failing run observe the same delays (the same property
    :func:`reseed` gives replacement seeds).  Capped at ``cap_s``;
    ``base_s <= 0`` disables backoff entirely.
    """
    if base_s <= 0 or attempt <= 1:
        return 0.0
    digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
    jitter = 0.5 + int.from_bytes(digest[:8], "big") / 2 ** 64
    return min(cap_s, base_s * 2 ** (attempt - 2) * jitter)


def run_resilient(run_one: Callable[[str, int], Any],
                  names: Sequence[str], *, seed: int = 1,
                  retries: int = 1,
                  on_attempt: Optional[Callable[[str, int, int], None]]
                  = None,
                  backoff_s: float = 0.05,
                  sleep: Callable[[float], None] = time.sleep
                  ) -> List[RunOutcome]:
    """Run ``run_one(scheme, seed)`` per scheme, retrying on failure.

    A :class:`SimulationError` (watchdog trips included) triggers up to
    ``retries`` re-runs with :func:`reseed`-derived seeds; if they all
    fail, the sweep *records* the failure and moves on to the next scheme
    instead of raising, so callers always get one outcome per name.
    ``on_attempt(scheme, attempt, seed)`` is called before each try
    (progress reporting).  Each retry first waits out the deterministic
    :func:`retry_backoff` delay seeded from the scheme name
    (``backoff_s=0`` disables; ``sleep`` is injectable for tests).
    """
    outcomes: List[RunOutcome] = []
    for name in names:
        attempt = 0
        last_error = ""
        while attempt <= retries:
            attempt += 1
            delay = retry_backoff(name, attempt, base_s=backoff_s)
            if delay:
                sleep(delay)
            attempt_seed = reseed(seed, attempt)
            if on_attempt is not None:
                on_attempt(name, attempt, attempt_seed)
            try:
                result = run_one(name, attempt_seed)
            except SimulationError as exc:
                last_error = str(exc) or type(exc).__name__
                continue
            outcomes.append(RunOutcome(name, result, None, attempt,
                                       attempt_seed))
            break
        else:
            outcomes.append(RunOutcome(name, None, last_error, attempt,
                                       reseed(seed, attempt)))
    return outcomes
