"""Reusable crash-isolated worker fleet.

The worker lifecycle extracted from the sweep executor's one-shot pool
loop (:mod:`repro.experiments.parallel`) so a second consumer — the
long-lived ``repro serve`` daemon — can share it verbatim: spawn-started
single-job processes, one pipe per worker, and a combined wait over
pipes *and* process sentinels so a large result being streamed and a
silent worker death both resolve without deadlock.

The fleet is deliberately policy-free.  It launches workers, observes
them (:class:`FleetEvent`), and kills them; retries, reseeding,
checkpointing, and migration belong to the caller (the sweep executor's
``_run_pool`` and the daemon's scheduler respectively).

Workers can optionally send *heartbeats*: with ``heartbeat_every_s``
set, every worker runs a tiny daemon thread that sends ``("hb", n)``
down its pipe on that cadence, and the parent-side
:attr:`WorkerHandle.last_seen` timestamp advances on every message.  A
supervisor that stops seeing heartbeats (process frozen, swapped out,
SIGSTOPped, or its pipe gone) can :meth:`WorkerFleet.evict` the worker
and migrate its job.  Heartbeats prove the *process* is alive, not that
the simulation inside is progressing — wall-clock progress budgets are
the :class:`~repro.faults.ScenarioWatchdog`'s job, and the daemon
additionally supports a per-job deadline.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from multiprocessing import connection, get_context
from typing import Any, Dict, List, NamedTuple, Optional

from ..errors import WORKER_DRILL_EXIT, SnapshotHalt
from ..sim.errors import SimulationError

#: Event kinds produced by :meth:`WorkerFleet.poll`.  ``ok`` / ``error``
#: / ``fatal`` mirror the worker's terminal message; ``died`` is a
#: worker that disappeared without one (payload: exit code); ``hb`` is
#: a heartbeat (payload: beat counter).  Terminal events remove the
#: handle from the fleet; heartbeats do not.
EVENT_OK = "ok"
EVENT_ERROR = "error"
EVENT_FATAL = "fatal"
EVENT_DIED = "died"
EVENT_HEARTBEAT = "hb"


class FleetEvent(NamedTuple):
    """One observation about one worker, from :meth:`WorkerFleet.poll`."""

    handle: "WorkerHandle"
    kind: str
    payload: Any


class WorkerHandle:
    """Parent-side bookkeeping for one live worker process."""

    __slots__ = ("token", "job_kind", "process", "conn", "started_at",
                 "last_seen")

    def __init__(self, token: Any, job_kind: str, process: Any,
                 conn: Any, now: float) -> None:
        self.token = token          # opaque caller context (job identity)
        self.job_kind = job_kind
        self.process = process
        self.conn = conn
        self.started_at = now       # monotonic launch time
        self.last_seen = now        # monotonic time of the last message

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid


def _worker_main(conn, kind_name: str, params: Dict[str, Any],
                 snapshot_spec: Optional[Dict[str, Any]] = None,
                 heartbeat_every_s: Optional[float] = None) -> None:
    """Worker entry point: run one job, send one terminal message, exit.

    Imports from :mod:`repro.experiments.parallel` are deferred: the
    spawned child resolves this function by name before the registry
    module is needed, and the late import keeps the two modules free of
    an import cycle in the parent.
    """
    from .parallel import JOB_KINDS, _snapshot_policy

    send_lock = threading.Lock()

    def send(message) -> None:
        with send_lock:
            conn.send(message)

    stop_beating = threading.Event()
    if heartbeat_every_s:
        def beat() -> None:
            count = 0
            while not stop_beating.wait(heartbeat_every_s):
                count += 1
                try:
                    send((EVENT_HEARTBEAT, count))
                except OSError:
                    return  # parent went away; nothing left to tell
        threading.Thread(target=beat, daemon=True).start()

    try:
        kind = JOB_KINDS[kind_name]
        if snapshot_spec:
            params = dict(params)
            params["snapshot"] = _snapshot_policy(
                snapshot_spec, snapshot_spec.get("restore", False))
        result = kind.run(**params)
        stop_beating.set()
        send((EVENT_OK, kind.encode(result)))
    except SnapshotHalt:
        # Kill drill: die like a crashed worker would, without a
        # message, so the parent exercises the real died-mid-sim path
        # (retry same seed, restore from the autosave just written).
        stop_beating.set()
        conn.close()
        os._exit(WORKER_DRILL_EXIT)
    except SimulationError as exc:
        stop_beating.set()
        send((EVENT_ERROR, str(exc) or type(exc).__name__))
    except BaseException as exc:
        # A non-simulation exception is a bug, not a flaky run: report
        # it as fatal (the parent re-raises or fails the job) and let
        # the traceback land on stderr for debugging.
        stop_beating.set()
        try:
            send((EVENT_FATAL, f"{type(exc).__name__}: {exc}"))
        except OSError:
            pass
        raise
    finally:
        stop_beating.set()
        conn.close()


class WorkerFleet:
    """A set of live single-job worker processes.

    Thread-safety: the handle table is lock-protected so one thread may
    block in :meth:`poll` while another calls :meth:`launch` or
    :meth:`evict` (the daemon does exactly that); the sweep executor
    uses the fleet single-threaded and pays one uncontended lock.
    """

    def __init__(self, *, start_method: str = "spawn",
                 heartbeat_every_s: Optional[float] = None) -> None:
        self._ctx = get_context(start_method)
        self._lock = threading.Lock()
        self._running: Dict[Any, WorkerHandle] = {}  # conn -> handle
        self.heartbeat_every_s = heartbeat_every_s

    def __len__(self) -> int:
        with self._lock:
            return len(self._running)

    def live(self) -> List[WorkerHandle]:
        """Snapshot of the currently running handles."""
        with self._lock:
            return list(self._running.values())

    # -- lifecycle ------------------------------------------------------------

    def launch(self, job_kind: str, params: Dict[str, Any],
               snapshot_spec: Optional[Dict[str, Any]] = None, *,
               token: Any = None) -> WorkerHandle:
        """Start one worker for one job attempt."""
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(send_conn, job_kind, params, snapshot_spec,
                  self.heartbeat_every_s),
            daemon=True)
        process.start()
        send_conn.close()  # keep only the child's write end open
        handle = WorkerHandle(token, job_kind, process, recv_conn,
                              time.monotonic())
        with self._lock:
            self._running[recv_conn] = handle
        return handle

    def poll(self, timeout: Optional[float] = None) -> List[FleetEvent]:
        """Wait up to ``timeout`` seconds and report what happened.

        Waits on every worker's pipe *and* process sentinel together.
        Heartbeat messages refresh :attr:`WorkerHandle.last_seen` and
        surface as ``hb`` events; a terminal message (``ok`` / ``error``
        / ``fatal``) or a silent death (``died``) reaps the worker and
        removes it from the fleet.  With no workers at all the call
        just sleeps out its timeout (a scheduler tick).
        """
        with self._lock:
            handles = list(self._running.values())
        events: List[FleetEvent] = []
        if not handles:
            if timeout:
                time.sleep(timeout)
            return events
        waitables = ([handle.conn for handle in handles]
                     + [handle.process.sentinel for handle in handles])
        ready = set(connection.wait(waitables, timeout))
        now = time.monotonic()
        for handle in handles:
            if (handle.conn not in ready
                    and handle.process.sentinel not in ready):
                continue
            terminal = None
            try:
                while handle.conn.poll(0):
                    message = handle.conn.recv()
                    handle.last_seen = now
                    if message[0] == EVENT_HEARTBEAT:
                        events.append(FleetEvent(handle, EVENT_HEARTBEAT,
                                                 message[1]))
                    else:
                        terminal = message
                        break
            except (EOFError, OSError):
                terminal = None  # worker died mid-send
            if terminal is not None:
                self._reap(handle)
                events.append(FleetEvent(handle, terminal[0], terminal[1]))
            elif handle.process.sentinel in ready:
                self._reap(handle)
                events.append(FleetEvent(handle, EVENT_DIED,
                                         handle.process.exitcode))
        return events

    def evict(self, handle: WorkerHandle,
              sig: int = signal.SIGKILL) -> None:
        """Kill a worker (default SIGKILL).

        The handle stays in the fleet: the next :meth:`poll` observes
        the death through the sentinel and reports a ``died`` event, so
        eviction flows through the exact same migration path as a real
        crash.  Racing an exit is fine — a vanished pid is ignored.
        """
        pid = handle.process.pid
        if pid is None:
            return
        try:
            os.kill(pid, sig)
        except (ProcessLookupError, PermissionError):
            pass

    def terminate_all(self) -> None:
        """Reap the whole fleet (interrupt / drain-deadline path)."""
        with self._lock:
            handles = list(self._running.values())
            self._running.clear()
        for handle in handles:
            handle.process.terminate()
        for handle in handles:
            handle.process.join()
            handle.conn.close()

    def _reap(self, handle: WorkerHandle) -> None:
        handle.process.join()
        handle.conn.close()
        with self._lock:
            self._running.pop(handle.conn, None)
