"""Large-scale simulations (paper §V-B, Figs. 10-13).

Static-flow runs use a star "compute rack" with 8 WRR service queues on a
10 or 100 Gbps bottleneck; dynamic-flow runs use a leaf-spine fabric with
ECMP, SPQ(1)/DRR(7), PIAS, and the four production workloads.

All scale knobs (sender counts, fabric size, flow counts, horizons) are
parameters with paper defaults, so the bench harness can run reduced
versions that preserve the experiments' shape.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Sequence

from ..apps.client_server import RequestResponseApp
from ..apps.iperf import IperfApp
from ..metrics.fairness import jain_index
from ..metrics.throughput import PortThroughputMeter, ThroughputSample
from ..net.topology import Network, build_leaf_spine, build_star
from ..queueing.schedulers.spq import SPQDRRScheduler
from ..queueing.schedulers.wrr import WRRScheduler
from ..sim.engine import Simulator
from ..sim.randomness import RandomStreams, stable_hash
from ..sim.trace import TraceBus
from ..sim.units import (
    gbps,
    kilobytes,
    megabytes,
    microseconds,
    milliseconds,
    seconds,
)
from ..snapshot import SimWorld, SnapshotPolicy, acquire_world, run_world
from ..transport.pias import PIASConfig
from ..transport.registry import sender_class
from ..workloads.datasets import workload, workload_names
from ..workloads.distributions import EmpiricalCDF
from ..workloads.flowgen import FlowSpec, generate_flows
from .runner import buffer_factory, scheme, transport_for
from .testbed import FCTResult


class SimConfig(NamedTuple):
    """Link-speed-dependent constants (§V-B, "Methodology")."""

    rate_bps: int
    buffer_bytes: int
    rtt_ns: int
    mtu_bytes: int
    min_rto_ns: int = milliseconds(5)   # "lowest stable value in jiffy timer"


# Broadcom Trident+ (10 G) and Trident 3 (100 G, jumbo frames) per-port
# buffers, as chosen in the paper.
SIM_10G = SimConfig(rate_bps=gbps(10), buffer_bytes=kilobytes(192),
                    rtt_ns=microseconds(84), mtu_bytes=1500)
SIM_100G = SimConfig(rate_bps=gbps(100), buffer_bytes=megabytes(1),
                     rtt_ns=microseconds(40), mtu_bytes=9000)


class StaticSimResult(NamedTuple):
    """Fairness + aggregate-throughput series for Figs. 10-12."""

    scheme: str
    samples: List[ThroughputSample]
    stop_times_ns: List[Optional[int]]
    config: SimConfig
    num_queues: int

    def active_queues_at(self, time_ns: int) -> List[int]:
        """Queues whose senders have not been stopped before ``time_ns``."""
        return [q for q, stop in enumerate(self.stop_times_ns)
                if stop is None or time_ns <= stop]

    def fairness_series(self) -> List[float]:
        """Jain index between active queues for every sample interval."""
        series = []
        for sample in self.samples:
            active = self.active_queues_at(sample.time_ns
                                           - 1)  # interval start side
            rates = [sample.per_queue_bps[q] for q in active]
            series.append(jain_index(rates))
        return series

    def aggregate_series(self) -> List[float]:
        return [sample.aggregate_bps for sample in self.samples]

    def mean_aggregate_bps(self, start_ns: int = 0,
                           end_ns: Optional[int] = None) -> float:
        window = [s.aggregate_bps for s in self.samples
                  if s.time_ns > start_ns
                  and (end_ns is None or s.time_ns <= end_ns)]
        return sum(window) / len(window) if window else 0.0

    def mean_fairness(self, start_ns: int = 0,
                      end_ns: Optional[int] = None) -> float:
        pairs = [(sample, fairness) for sample, fairness
                 in zip(self.samples, self.fairness_series())
                 if sample.time_ns > start_ns
                 and (end_ns is None or sample.time_ns <= end_ns)]
        if not pairs:
            return 1.0
        return sum(fairness for _, fairness in pairs) / len(pairs)


def run_static_sim(scheme_name: str, *, config: SimConfig = SIM_10G,
                   num_queues: int = 8,
                   senders_for_queue: Callable[[int], int] = lambda k: 2 * k,
                   first_stop_ms: float = 200.0,
                   stop_step_ms: float = 50.0,
                   duration_ms: float = 600.0,
                   sample_interval_ms: float = 10.0,
                   sim: Optional[Simulator] = None,
                   trace: Optional[TraceBus] = None,
                   snapshot: Optional[SnapshotPolicy] = None
                   ) -> StaticSimResult:
    """Figs. 10-12: staggered-stop bandwidth sharing on a fast rack.

    Queue *k* (1-based) is fed by ``senders_for_queue(k)`` single-flow
    senders (paper: ``2k`` for Figs. 10-11, ``2^(3+k)`` for Fig. 12).
    All flows start at t=0; from ``first_stop_ms`` queues 2..N stop in
    order every ``stop_step_ms``.  WRR with equal weights schedules the
    bottleneck (the receiver h0's downlink).
    """
    def build() -> SimWorld:
        return _prepare_static_sim(
            scheme_name, config=config, num_queues=num_queues,
            senders_for_queue=senders_for_queue,
            first_stop_ms=first_stop_ms, stop_step_ms=stop_step_ms,
            duration_ms=duration_ms,
            sample_interval_ms=sample_interval_ms, sim=sim, trace=trace)

    world = acquire_world(snapshot, "static-sim", build)
    run_world(world, snapshot)
    result = world.finish(world)
    if world.restored:
        world.close_recorders()
    return result


def _prepare_static_sim(scheme_name: str, *, config: SimConfig,
                        num_queues: int,
                        senders_for_queue: Callable[[int], int],
                        first_stop_ms: float, stop_step_ms: float,
                        duration_ms: float, sample_interval_ms: float,
                        sim: Optional[Simulator] = None,
                        trace: Optional[TraceBus] = None) -> SimWorld:
    sender_counts = [senders_for_queue(k) for k in range(1, num_queues + 1)]
    net = build_star(
        num_hosts=1 + sum(sender_counts), rate_bps=config.rate_bps,
        rtt_ns=config.rtt_ns, buffer_bytes=config.buffer_bytes,
        scheduler_factory=lambda: WRRScheduler([1.0] * num_queues),
        buffer_factory=buffer_factory(scheme_name, rtt_ns=config.rtt_ns),
        sim=sim, trace=trace)
    bottleneck = net.switch("s0").ports["s0->h0"]
    meter = PortThroughputMeter(
        net.sim, bottleneck, milliseconds(sample_interval_ms))

    stop_times: List[Optional[int]] = [None] * num_queues
    for queue_number in range(2, num_queues + 1):
        stop_ms = first_stop_ms + (queue_number - 2) * stop_step_ms
        stop_times[queue_number - 1] = milliseconds(stop_ms)

    flow_id = 0
    host_index = 1
    for queue_index, count in enumerate(sender_counts):
        for _ in range(count):
            app = IperfApp(
                net.sim, net.host(f"h{host_index}"), destination="h0",
                num_flows=1, service_class=queue_index,
                sender_class=sender_class("tcp"), flow_id_base=flow_id,
                mtu_bytes=config.mtu_bytes, min_rto_ns=config.min_rto_ns)
            flow_id += 1
            app.start_at(0)
            if stop_times[queue_index] is not None:
                app.stop_at(stop_times[queue_index])
            host_index += 1
    return SimWorld(
        kind="static-sim", net=net, finish=_finish_static_sim,
        horizon_ns=milliseconds(duration_ms),
        state={"scheme": scheme(scheme_name).name, "meter": meter,
               "stop_times": stop_times, "config": config,
               "num_queues": num_queues},
        meta={"scheme": scheme_name})


def _finish_static_sim(world: SimWorld) -> StaticSimResult:
    state = world.state
    return StaticSimResult(state["scheme"], state["meter"].samples,
                           state["stop_times"], state["config"],
                           state["num_queues"])


def many_flows_senders(k: int) -> int:
    """Fig. 12's extreme fan-in: queue k has ``2^(3+k)`` senders."""
    return 2 ** (3 + k)


# ---------------------------------------------------------------------------
# Fig. 13 — leaf-spine dynamic flows
# ---------------------------------------------------------------------------

class LeafSpineConfig(NamedTuple):
    """The paper's fabric: 12 leaves x 12 spines, 12 hosts per leaf."""

    num_leaves: int = 12
    num_spines: int = 12
    hosts_per_leaf: int = 12
    rate_bps: int = gbps(10)
    buffer_bytes: int = kilobytes(192)
    rtt_ns: int = microseconds(85.2)
    mtu_bytes: int = 1500
    min_rto_ns: int = milliseconds(5)


DEFAULT_LEAF_SPINE = LeafSpineConfig()


def run_leafspine_fct(scheme_name: str, *, load: float,
                      num_flows: int = 10_000,
                      num_service_queues: int = 7,
                      config: LeafSpineConfig = DEFAULT_LEAF_SPINE,
                      distributions: Optional[Sequence[EmpiricalCDF]] = None,
                      seed: int = 1,
                      pias_threshold: int = kilobytes(100),
                      quantum_bytes: float = 1500.0,
                      drain_timeout_s: float = 30.0,
                      sim: Optional[Simulator] = None,
                      trace: Optional[TraceBus] = None) -> FCTResult:
    """Fig. 13: FCT across a leaf-spine fabric with ECMP.

    Communication pairs are classified into ``num_service_queues``
    services by stable hash (the paper splits the 144 x 143 pairs evenly
    into 7 services); each service uses one of the four production
    workloads round-robin.  Every switch port runs SPQ(1)/DRR(N) with
    PIAS demotion at 100 KB.
    """
    spec = scheme(scheme_name)
    streams = RandomStreams(seed)
    rng = streams.stream(f"leafspine:{scheme_name}:{load}")
    if distributions is None:
        distributions = [workload(name) for name in workload_names()]
    net = build_leaf_spine(
        num_leaves=config.num_leaves, num_spines=config.num_spines,
        hosts_per_leaf=config.hosts_per_leaf, rate_bps=config.rate_bps,
        rtt_ns=config.rtt_ns, buffer_bytes=config.buffer_bytes,
        scheduler_factory=lambda: SPQDRRScheduler(
            1, [quantum_bytes] * num_service_queues),
        buffer_factory=buffer_factory(scheme_name, rtt_ns=config.rtt_ns),
        sim=sim, trace=trace)
    hosts = net.host_names()

    # Every service draws its flow sizes from one of the four workloads.
    per_service_dist = [
        distributions[s % len(distributions)]
        for s in range(num_service_queues)
    ]

    # Pre-assign each flow a (src, dst) pair and thus a service, then
    # generate its arrival time from the service's workload-specific rate.
    per_service_specs: Dict[int, List[FlowSpec]] = {
        s: [] for s in range(num_service_queues)}
    pair_choices = []
    for _ in range(num_flows):
        src = rng.choice(hosts)
        dst = rng.choice(hosts)
        while dst == src:
            dst = rng.choice(hosts)
        service = stable_hash(src, dst) % num_service_queues
        pair_choices.append((src, dst, service))
    service_counts = [0] * num_service_queues
    for _, _, service in pair_choices:
        service_counts[service] += 1
    # The load is interpreted per downlink; distribute it over services by
    # their flow share so the aggregate offered load matches the target.
    for service in range(num_service_queues):
        count = service_counts[service]
        if count == 0:
            continue
        per_service_specs[service] = generate_flows(
            distribution=per_service_dist[service],
            load=load * count / num_flows,
            link_rate_bps=config.rate_bps, num_flows=count,
            rng=streams.stream(f"svc{service}:{scheme_name}:{load}"))

    # Interleave: flow i takes the next spec of its service.
    cursors = [0] * num_service_queues
    assembled = []
    for src, dst, service in pair_choices:
        spec_item = per_service_specs[service][cursors[service]]
        cursors[service] += 1
        assembled.append((spec_item, src, dst, service))
    assembled.sort(key=lambda item: item[0].arrival_ns)

    flow_specs = [item[0] for item in assembled]
    placements = [(item[1], item[2], 1 + item[3]) for item in assembled]

    app = RequestResponseApp(
        net, specs=flow_specs,
        placement=lambda index: placements[index],
        sender_class=transport_for(scheme_name),
        pias=PIASConfig(demotion_threshold=pias_threshold),
        mtu_bytes=config.mtu_bytes, min_rto_ns=config.min_rto_ns)
    horizon = flow_specs[-1].arrival_ns + seconds(drain_timeout_s)
    _drain(net, app, horizon)
    return FCTResult(spec.name, load, app.fct.summary(),
                     app.completed, app.outstanding, app.fct)


def _drain(net: Network, app: RequestResponseApp, horizon_ns: int) -> None:
    chunk = seconds(1.0)
    while app.outstanding and net.sim.now < horizon_ns:
        net.sim.run(until=min(net.sim.now + chunk, horizon_ns))
        if net.sim.peek_time() is None:
            break
