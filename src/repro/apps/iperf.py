"""iperf-style bulk senders for the static-flow experiments.

The paper's static experiments start a fixed number of long-lived flows
per sender host ("using iperf, each sender starts flows to the receiver
for 10 seconds") and later stop them on a schedule.  :class:`IperfApp`
models one sender host running N parallel bulk flows into one service
class; flows carry an effectively unbounded byte count and are aborted at
``stop()``.
"""

from __future__ import annotations

from typing import List, Optional, Type

from ..net.host import Host
from ..sim.engine import Simulator
from ..sim.units import GIGABYTE
from ..transport.base import Flow
from ..transport.tcp import TCPSender

# Large enough that no static experiment completes a flow "naturally".
BULK_FLOW_BYTES = 100 * GIGABYTE


class IperfApp:
    """N parallel bulk flows from one host to one destination."""

    def __init__(self, sim: Simulator, host: Host, *, destination: str,
                 num_flows: int, service_class: int,
                 sender_class: Type[TCPSender] = TCPSender,
                 flow_id_base: int = 0, mtu_bytes: int = 1500,
                 min_rto_ns: Optional[int] = None) -> None:
        if num_flows <= 0:
            raise ValueError("num_flows must be positive")
        self.sim = sim
        self.host = host
        self.senders: List[TCPSender] = []
        for index in range(num_flows):
            flow = Flow(
                flow_id=flow_id_base + index, src=host.name,
                dst=destination, size=BULK_FLOW_BYTES,
                service_class=service_class)
            kwargs = {"mtu_bytes": mtu_bytes}
            if min_rto_ns is not None:
                kwargs["min_rto_ns"] = min_rto_ns
            sender = sender_class(sim, host, flow, **kwargs)
            host.register_sender(sender)
            self.senders.append(sender)

    def start_at(self, time_ns: int) -> None:
        """Schedule all flows to start at the given simulated time."""
        for sender in self.senders:
            self.sim.at(time_ns, sender.start)

    def stop_at(self, time_ns: int) -> None:
        """Schedule all flows to be aborted at the given simulated time."""
        for sender in self.senders:
            self.sim.at(time_ns, sender.abort)

    def total_acked_bytes(self) -> int:
        """Bytes cumulatively acknowledged across all flows."""
        return sum(sender.high_ack for sender in self.senders)
