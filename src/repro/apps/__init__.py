"""Traffic applications: iperf-style bulk senders and request/response."""

from .client_server import (
    RequestResponseApp,
    random_many_to_one_placement,
    random_pairs_placement,
)
from .iperf import BULK_FLOW_BYTES, IperfApp

__all__ = [
    "RequestResponseApp",
    "random_many_to_one_placement",
    "random_pairs_placement",
    "BULK_FLOW_BYTES",
    "IperfApp",
]
