"""Request/response traffic application for the dynamic-flow experiments.

Models the paper's client/server benchmark (borrowed from MQ-ECN): a
client issues requests whose inter-arrival times follow a Poisson process;
each request makes a chosen server respond with a flow whose size is drawn
from a production workload.  Flows are mapped to service queues at random
(or per-server), and two-level PIAS tags the first 100 KB of every flow
into the shared high-priority class.

The paper's persistent-connection pool is a testbed artifact (it avoids
handshake cost); the model spawns one transport sender per request, which
exercises the identical switch-side code path.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Type

from ..metrics.fct import FCTCollector
from ..net.topology import Network
from ..transport.base import Flow
from ..transport.pias import PIASConfig
from ..transport.tcp import TCPSender
from ..workloads.flowgen import FlowSpec

# Service placement: a callable mapping a request index to
# (server_host_name, client_host_name, service_class).
Placement = Callable[[int], tuple]


class RequestResponseApp:
    """Drives generated flow specs through a network and collects FCTs."""

    def __init__(self, net: Network, *, specs: Sequence[FlowSpec],
                 placement: Placement,
                 sender_class: Type[TCPSender] = TCPSender,
                 pias: Optional[PIASConfig] = None,
                 mtu_bytes: int = 1500,
                 min_rto_ns: Optional[int] = None,
                 flow_id_base: int = 0) -> None:
        self.net = net
        self.fct = FCTCollector()
        self.senders: List[TCPSender] = []
        for index, spec in enumerate(specs):
            server_name, client_name, service_class = placement(index)
            flow = Flow(
                flow_id=flow_id_base + index, src=server_name,
                dst=client_name, size=spec.size_bytes,
                service_class=service_class,
                pias_threshold=(pias.demotion_threshold
                                if pias is not None else None),
                start_time=spec.arrival_ns)
            kwargs = {"mtu_bytes": mtu_bytes,
                      "on_complete": self._on_complete}
            if min_rto_ns is not None:
                kwargs["min_rto_ns"] = min_rto_ns
            server = net.host(server_name)
            sender = sender_class(net.sim, server, flow, **kwargs)
            server.register_sender(sender)
            net.sim.at(spec.arrival_ns, sender.start)
            self.senders.append(sender)

    def _on_complete(self, sender: TCPSender) -> None:
        self.fct.record_sender(sender)

    @property
    def completed(self) -> int:
        return len(self.fct.records)

    @property
    def outstanding(self) -> int:
        return len(self.senders) - self.completed


def random_many_to_one_placement(
        servers: Sequence[str], client: str, num_service_classes: int,
        rng: random.Random, first_class: int = 1) -> Placement:
    """Testbed-style placement: random server, fixed client, random queue.

    Service classes are drawn from ``[first_class, first_class +
    num_service_classes)`` — class 0 is reserved for the PIAS
    high-priority queue.
    """
    def placement(index: int) -> tuple:
        server = rng.choice(list(servers))
        service_class = first_class + rng.randrange(num_service_classes)
        return server, client, service_class
    return placement


def random_pairs_placement(
        hosts: Sequence[str], num_service_classes: int,
        rng: random.Random, first_class: int = 1,
        class_of_pair: Optional[Dict[tuple, int]] = None) -> Placement:
    """Fabric-style placement: random (src, dst) pair, class per pair.

    When ``class_of_pair`` is given it fixes the service class of each
    communication pair (the paper classifies the 144 x 143 pairs evenly
    into 7 services); otherwise classes are drawn per flow.
    """
    host_list = list(hosts)

    def placement(index: int) -> tuple:
        src = rng.choice(host_list)
        dst = rng.choice(host_list)
        while dst == src:
            dst = rng.choice(host_list)
        if class_of_pair is not None:
            service_class = class_of_pair[(src, dst)]
        else:
            service_class = first_class + rng.randrange(num_service_classes)
        return src, dst, service_class
    return placement
