"""Command-line interface: run any paper experiment from the shell.

Examples::

    python -m repro list-schemes
    python -m repro convergence --schemes dynaq,besteffort --duration 0.5
    python -m repro convergence --trace-out trace.jsonl
    python -m repro weighted --schemes dynaq,pql --weights 4,3,2,1
    python -m repro fct --schemes dynaq,pql --loads 0.3,0.5 --flows 120
    python -m repro static-sim --schemes dynaq,pql --rate 100g
    python -m repro profile convergence --scheme dynaq
    python -m repro trace-validate trace.jsonl
    python -m repro hw-cost
    python -m repro workloads
    python -m repro bench --quick --baseline benchmarks/perf/baseline.json
    python -m repro soak --seed 1 --iterations 20 --jobs 4 --triage-dir triage
    python -m repro soak --replay scenarios/kill-restore-dynaq.json
    python -m repro serve --socket /tmp/repro.sock --snapshot-every 0.01
    python -m repro submit --socket /tmp/repro.sock --kind fct \\
        --params '{"scheme": "dynaq", "load": 0.3, ...}' --wait

Every subcommand prints the same tables the benchmark harness produces;
``--csv PREFIX`` additionally dumps raw series to ``PREFIX.<scheme>.csv``.
Telemetry flags (``--trace-out``, ``--flight-dump``, ``--timeline-csv``;
see ``docs/observability.md``) attach collectors to the run's trace bus.
Snapshot flags (``--snapshot-every``, ``--snapshot-out``, ``--restore``;
see ``docs/robustness.md``) autosave and resume in-flight simulations.

Exit codes (see :mod:`repro.errors`): 0 success, 1 experiment-level
failure (regression, violation, failed sweep points), 2 usage/runtime
error or interrupt, 3 deliberate ``--snapshot-kill-after`` drill halt.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .core.hardware import cost_table
from .errors import EXIT_DRILL, EXIT_ERROR, EXIT_FAILURE, EXIT_OK, SnapshotHalt
from .experiments import report
from .experiments.chaos import ChaosResult, run_chaos_sweep
from .experiments.competitive import (
    DEFAULT_POLICIES,
    adversary,
    adversary_names,
    report_lines,
    run_competitive,
)
from .experiments.parallel import (
    JOB_KINDS,
    parallel_fct_sweep,
    parallel_incast_runs,
    parallel_static_runs,
)
from .experiments.simulation import SIM_10G, SIM_100G, run_static_sim
from .experiments.testbed import (
    fct_load_sweep,
    run_convergence,
    run_fair_sharing,
    run_fct_experiment,
    run_motivation,
    run_protocol_mix,
    run_weighted_sharing,
)
from .metrics.export import (
    write_fct_csv,
    write_steal_matrix_csv,
    write_threshold_series_csv,
    write_throughput_csv,
)
from .experiments.runner import run_scenario, scenario_names, scheme_names
from .faults import FaultSchedule
from .perf.config import active_config, set_config
from .sim.engine import Simulator
from .sim.errors import ConfigurationError, ReproError, SimulationError
from .sim.units import seconds
from .snapshot import SnapshotPolicy
from .telemetry import RunProfiler, TelemetrySession, validate_trace_file
from .workloads.datasets import workload, workload_names


def _split_schemes(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _split_floats(text: str) -> List[float]:
    return [float(item) for item in text.split(",") if item.strip()]


def _split_ints(text: str) -> List[int]:
    return [int(item) for item in text.split(",") if item.strip()]


def _maybe_export(results, prefix: Optional[str]) -> None:
    if not prefix:
        return
    for result in results:
        name = result.scheme.lower().replace("(", "-").replace(")", "")
        path = f"{prefix}.{name}.csv"
        write_throughput_csv(path, result.samples)
        print(f"wrote {path}")


# -- telemetry plumbing -------------------------------------------------------

def _parse_window(text: str) -> Tuple[Optional[int], Optional[int]]:
    """``START:END`` in ns; either side may be empty (open-ended)."""
    start_text, sep, end_text = text.partition(":")
    if not sep:
        raise argparse.ArgumentTypeError(
            "--trace-window expects START:END nanoseconds (either side "
            "may be empty)")
    start = int(start_text) if start_text else None
    end = int(end_text) if end_text else None
    return start, end


def _telemetry_session(args) -> TelemetrySession:
    """Build the run's telemetry session from CLI flags (may be inert)."""
    if getattr(args, "restore", None):
        # A restored world carries its own pickled recorders, already
        # positioned to rewrite exactly the post-snapshot suffix of
        # their files; opening fresh sinks here would truncate them.
        return TelemetrySession()
    topics = None
    if getattr(args, "trace_topics", None):
        topics = [item.strip() for item in args.trace_topics.split(",")
                  if item.strip()]
    start_ns = end_ns = None
    window = getattr(args, "trace_window", None)
    if window is not None:
        start_ns, end_ns = window
    return TelemetrySession(
        trace_out=getattr(args, "trace_out", None),
        topics=topics, start_ns=start_ns, end_ns=end_ns,
        flight_dump=getattr(args, "flight_dump", None),
        drop_burst_count=getattr(args, "drop_burst_count", 32),
        timeline=bool(getattr(args, "timeline_csv", None)))


def _finish_telemetry(session: TelemetrySession, args) -> None:
    """Close the session and report what the collectors produced."""
    session.close()
    if session.recorder is not None:
        print(f"wrote {args.trace_out} "
              f"({session.recorder.records_written} records)")
    if session.timeline is not None:
        prefix = args.timeline_csv
        for port in session.timeline.ports():
            path = f"{prefix}.{port}.thresholds.csv"
            rows = write_threshold_series_csv(path, session.timeline, port)
            print(f"wrote {path} ({rows} rows)")
            if session.timeline.steal_moves(port):
                path = f"{prefix}.{port}.steals.csv"
                write_steal_matrix_csv(path, session.timeline, port)
                print(f"wrote {path}")


def _report_partial(completed, schemes) -> None:
    """Print what survived an aborted multi-scheme run."""
    print(f"\naborted after {len(completed)}/{len(schemes)} schemes")
    for result in completed:
        samples = getattr(result, "samples", None)
        extra = f" ({len(samples)} samples)" if samples is not None else ""
        print(f"  completed: {getattr(result, 'scheme', result)}{extra}")


def _run_traced(args, run_one):
    """Run ``run_one(scheme, trace, snapshot)`` per scheme in one session.

    An abort (simulation error, watchdog trip, Ctrl-C) reports the
    schemes that *did* finish before re-raising; the telemetry session's
    exit hook has already dumped the flight recorder at that point.
    """
    with _diagnosis_session(args):
        session = _telemetry_session(args)
        trace = session.trace if session.active else None
        completed = []
        try:
            with session:
                for name in args.schemes:
                    completed.append(run_one(
                        name, trace,
                        _snapshot_policy(args, name, len(args.schemes))))
                return completed
        except (SimulationError, KeyboardInterrupt):
            _report_partial(completed, args.schemes)
            raise
        finally:
            _finish_telemetry(session, args)


def _load_faults(args) -> Optional[FaultSchedule]:
    path = getattr(args, "faults", None)
    return FaultSchedule.from_file(path) if path else None


# -- queue-diagnosis plumbing -------------------------------------------------

@contextmanager
def _diagnosis_session(args):
    """Arm per-packet queue diagnosis for a serial run (may be inert).

    Flips the ``queue_diagnosis`` perf switch on for components built
    inside the block, installs a capture that the end-of-run hook in
    :func:`repro.snapshot.world.run_world` feeds, and writes the dump on
    the way out — including after a partial run (kill drill, simulation
    error), so a crashed experiment still leaves evidence for ``repro
    diagnose``.
    """
    out = getattr(args, "diagnose_out", None)
    if not out:
        yield None
        return
    if _parallel_requested(args):
        raise ConfigurationError(
            "--diagnose-out captures sketches in-process, so it needs a "
            "serial run; drop --jobs/--resume/--checkpoint, or dispatch "
            "repro.diagnosis.jobs targets through the executor instead "
            "(see docs/observability.md)")
    from .diagnosis import (
        SketchSettings,
        capture_diagnosis,
        write_diagnosis,
    )
    window_s = getattr(args, "diagnose_window", None)
    settings = (SketchSettings(window_ns=seconds(window_s))
                if window_s else None)
    previous = set_config(active_config().clone(queue_diagnosis=True))
    try:
        with capture_diagnosis(settings) as capture:
            try:
                yield capture
            finally:
                document = write_diagnosis(out, capture)
                print(f"wrote {out} ({len(document['ports'])} port(s), "
                      f"{capture.worlds_collected} run(s))")
    finally:
        set_config(previous)


def _reject_parallel_diagnosis(args) -> None:
    """Worker-pool branches cannot capture in-process sketches."""
    if getattr(args, "diagnose_out", None):
        raise ConfigurationError(
            "--diagnose-out needs a serial run (worker processes cannot "
            "feed the in-process capture); drop --jobs/--resume/"
            "--checkpoint, or dispatch repro.diagnosis.jobs targets "
            "through the executor (see docs/observability.md)")


# -- snapshot plumbing --------------------------------------------------------

def _snapshot_requested(args) -> bool:
    return bool(getattr(args, "snapshot_every", None)
                or getattr(args, "restore", None)
                or getattr(args, "snapshot_kill_after", None)
                or getattr(args, "triage_dir", None))


def _snapshot_policy(args, label: str,
                     total: int) -> Optional[SnapshotPolicy]:
    """The :class:`SnapshotPolicy` for one run of a multi-run command.

    ``label`` disambiguates ``--snapshot-out`` when the command drives
    more than one simulation (one per scheme, or per scheme-load point);
    ``--restore`` resumes exactly one simulation, so it rejects
    invocations that would run several.
    """
    if not _snapshot_requested(args):
        return None
    out = args.snapshot_out
    if out is not None and total > 1:
        out = f"{out}.{label}"
    if args.restore is not None and total > 1:
        raise ConfigurationError(
            f"--restore resumes exactly one run, but this invocation "
            f"would run {total}; narrow the sweep to a single point")
    return SnapshotPolicy(
        every_ns=seconds(args.snapshot_every) if args.snapshot_every
        else None,
        out=out, restore=args.restore,
        halt_after_saves=args.snapshot_kill_after,
        triage_dir=args.triage_dir)


def _parallel_autosave_ns(args) -> Optional[int]:
    """Worker autosave cadence; rejects serial-only snapshot flags.

    Parallel sweeps autosave per job into ``<checkpoint>.autosaves/``
    and resume crashed workers automatically; explicit snapshot files,
    kill drills, and ``--restore`` are single-serial-run tools.
    """
    serial_only = [flag for flag, value in [
        ("--snapshot-out", args.snapshot_out),
        ("--restore", args.restore),
        ("--snapshot-kill-after", args.snapshot_kill_after),
        ("--triage-dir", args.triage_dir)] if value is not None]
    if serial_only:
        raise ConfigurationError(
            f"{', '.join(serial_only)} apply to a single serial run; "
            "parallel sweeps autosave per job next to the checkpoint "
            "(--snapshot-every) and resume with --resume")
    if args.snapshot_every is None:
        return None
    return seconds(args.snapshot_every)


# -- parallel execution plumbing ----------------------------------------------

def _parallel_requested(args) -> bool:
    """True when the run should go through the worker-pool executor.

    ``--jobs 1`` without ``--resume``/``--checkpoint`` keeps the plain
    serial code path (its output is byte-identical anyway, but the
    serial path also supports things workers cannot, e.g. per-packet
    tracing into ``--trace-out``).
    """
    return (getattr(args, "jobs", 1) != 1
            or getattr(args, "resume", False)
            or getattr(args, "checkpoint", None) is not None)


def _checkpoint_path(args) -> str:
    return (getattr(args, "checkpoint", None)
            or f"repro-{args.command}.checkpoint.jsonl")


def _print_failures(failures) -> bool:
    """Report failed sweep points; True when there were any."""
    for line in report.failure_lines(failures):
        print(line)
    return bool(failures)


def _cmd_list_schemes(args) -> int:
    for name in scheme_names():
        print(name)
    return 0


def _cmd_workloads(args) -> int:
    print("workload".ljust(14) + "mean(KB)".rjust(10)
          + "median(B)".rjust(11) + "p99(MB)".rjust(9))
    for name in workload_names():
        cdf = workload(name)
        print(name.ljust(14)
              + f"{cdf.mean_bytes() / 1e3:.0f}".rjust(10)
              + f"{cdf.inverse(0.5)}".rjust(11)
              + f"{cdf.inverse(0.99) / 1e6:.1f}".rjust(9))
    return 0


def _cmd_hw_cost(args) -> int:
    for row in cost_table():
        print(f"{row['queues']} queues: {row['total_cycles']} cycles "
              f"({row['trident3_overhead_pct']:.2f}% of a Trident 3 "
              f"packet budget)")
    return 0


def _cmd_convergence(args) -> int:
    faults = _load_faults(args)
    results = _run_traced(args, lambda name, trace, snap: run_convergence(
        name, duration_s=args.duration,
        sample_interval_s=args.duration / 10, trace=trace, faults=faults,
        snapshot=snap))
    print(report.timeseries_table(
        results, title="Throughput convergence (2 vs 16 flows)",
        queues=[0, 1]))
    _maybe_export(results, args.csv)
    return 0


def _cmd_motivation(args) -> int:
    faults = _load_faults(args)
    results = _run_traced(args, lambda name, trace, snap: run_motivation(
        name, duration_s=args.duration,
        sample_interval_s=args.duration / 8, trace=trace, faults=faults,
        snapshot=snap))
    print(report.throughput_table(
        results, title="Motivation: 1-sender queue vs 3-sender queue"))
    _maybe_export(results, args.csv)
    return 0


def _cmd_fair_sharing(args) -> int:
    faults = _load_faults(args)
    results = _run_traced(args, lambda name, trace, snap: run_fair_sharing(
        name, time_unit_s=args.time_unit,
        sample_interval_s=args.time_unit / 4, trace=trace, faults=faults,
        snapshot=snap))
    print(report.timeseries_table(
        results, title="Fair sharing with staggered queue stops",
        queues=[0, 1, 2, 3]))
    _maybe_export(results, args.csv)
    return 0


def _cmd_weighted(args) -> int:
    weights = _split_floats(args.weights)
    faults = _load_faults(args)
    results = _run_traced(
        args, lambda name, trace, snap: run_weighted_sharing(
            name, weights=weights, duration_s=args.duration,
            sample_interval_s=args.duration / 10, trace=trace,
            faults=faults, snapshot=snap))
    total = sum(weights)
    print(report.share_table(
        results, title=f"Throughput shares, weights {args.weights}",
        ideal=[weight / total for weight in weights]))
    _maybe_export(results, args.csv)
    return 0


def _cmd_protocol_mix(args) -> int:
    faults = _load_faults(args)
    results = _run_traced(args, lambda name, trace, snap: run_protocol_mix(
        name, time_unit_s=args.time_unit,
        sample_interval_s=args.time_unit / 4, trace=trace, faults=faults,
        snapshot=snap))
    print(report.timeseries_table(
        results, title="TCP (q1-2) vs CUBIC (q3-4)", queues=[0, 1, 2, 3]))
    _maybe_export(results, args.csv)
    return 0


def _cmd_fct(args) -> int:
    failures = []
    loads = _split_floats(args.loads)
    with _diagnosis_session(args):
        session = _telemetry_session(args)
        trace = session.trace if session.active else None
        try:
            with session:
                if _parallel_requested(args):
                    results, failures = parallel_fct_sweep(
                        args.schemes, loads,
                        num_flows=args.flows, workload=args.workload,
                        truncate_mb=args.truncate_mb, seed=args.seed,
                        jobs=args.jobs, retries=args.retries,
                        checkpoint=_checkpoint_path(args),
                        resume=args.resume, trace=trace,
                        autosave_every_ns=_parallel_autosave_ns(args))
                else:
                    distribution = workload(args.workload)
                    if args.truncate_mb:
                        distribution = distribution.truncated(
                            int(args.truncate_mb * 1_000_000))
                    if _snapshot_requested(args):
                        # Snapshots are per simulation, so drive the
                        # (scheme, load) grid point by point.
                        points = len(args.schemes) * len(loads)
                        results = {
                            name: [run_fct_experiment(
                                name, load=load, num_flows=args.flows,
                                distribution=distribution, seed=args.seed,
                                trace=trace,
                                snapshot=_snapshot_policy(
                                    args, f"{name}@{load:g}", points))
                                for load in loads]
                            for name in args.schemes}
                    else:
                        results = fct_load_sweep(
                            args.schemes, loads,
                            num_flows=args.flows, distribution=distribution,
                            seed=args.seed, trace=trace)
        finally:
            _finish_telemetry(session, args)
    for metric, label in [("avg_overall_ms", "overall"),
                          ("avg_small_ms", "small"),
                          ("p99_small_ms", "p99 small")]:
        print(report.fct_matrix(
            results, metric=metric, baseline_scheme=args.schemes[0],
            title=f"avg FCT {label} (normalised to {args.schemes[0]})"))
        print()
    print(report.fct_absolute_table(results, title="absolute FCTs (ms)"))
    if args.csv:
        for name, scheme_results in results.items():
            for result in scheme_results:
                path = f"{args.csv}.{name}.{result.load:.2f}.csv"
                write_fct_csv(path, result.collector.records)
                print(f"wrote {path}")
    return 1 if _print_failures(failures) else 0


def _cmd_incast(args) -> int:
    from .experiments.incast import run_incast
    print(f"{args.workers}-worker incast into a loaded 1 GbE port")
    print("scheme".ljust(14) + "QCT(ms)".rjust(9) + "mean(ms)".rjust(10)
          + "timeouts".rjust(10))
    failures = []
    if _parallel_requested(args):
        _reject_parallel_diagnosis(args)
        session = _telemetry_session(args)
        trace = session.trace if session.active else None
        try:
            with session:
                outcomes = parallel_incast_runs(
                    args.schemes, num_workers=args.workers,
                    horizon_s=args.horizon, jobs=args.jobs,
                    retries=args.retries,
                    checkpoint=_checkpoint_path(args),
                    resume=args.resume, trace=trace,
                    autosave_every_ns=_parallel_autosave_ns(args))
        finally:
            _finish_telemetry(session, args)
        results = [outcome.value for outcome in outcomes if outcome.ok]
        failures = [outcome for outcome in outcomes if not outcome.ok]
    else:
        results = _run_traced(args, lambda name, trace, snap: run_incast(
            name, num_workers=args.workers, horizon_s=args.horizon,
            trace=trace, snapshot=snap))
    for result in results:
        qct = (f"{result.query_completion_ms:.1f}"
               if result.query_completion_ms is not None else "-")
        mean = (f"{result.mean_fct_ms:.1f}"
                if result.mean_fct_ms is not None else "-")
        print(result.scheme.ljust(14) + qct.rjust(9) + mean.rjust(10)
              + str(result.timeouts).rjust(10))
    return 1 if _print_failures(failures) else 0


def _cmd_static_sim(args) -> int:
    failures = []
    if _parallel_requested(args):
        _reject_parallel_diagnosis(args)
        session = _telemetry_session(args)
        trace = session.trace if session.active else None
        try:
            with session:
                outcomes = parallel_static_runs(
                    args.schemes, rate=args.rate, num_queues=args.queues,
                    first_stop_ms=args.first_stop_ms,
                    stop_step_ms=args.stop_step_ms,
                    duration_ms=args.duration_ms,
                    sample_interval_ms=args.sample_ms, jobs=args.jobs,
                    retries=args.retries,
                    checkpoint=_checkpoint_path(args),
                    resume=args.resume, trace=trace,
                    autosave_every_ns=_parallel_autosave_ns(args))
        finally:
            _finish_telemetry(session, args)
        results = [outcome.value for outcome in outcomes if outcome.ok]
        failures = [outcome for outcome in outcomes if not outcome.ok]
    else:
        config = SIM_100G if args.rate == "100g" else SIM_10G
        results = _run_traced(args, lambda name, trace, snap: run_static_sim(
            name, config=config, num_queues=args.queues,
            senders_for_queue=lambda k: 2 * k,
            first_stop_ms=args.first_stop_ms,
            stop_step_ms=args.stop_step_ms,
            duration_ms=args.duration_ms,
            sample_interval_ms=args.sample_ms, trace=trace,
            snapshot=snap))
    per_scheme = {result.scheme: result for result in results}
    print(report.fairness_table(
        {name: result.fairness_series()
         for name, result in per_scheme.items()},
        title=f"Jain fairness between active queues ({args.rate})"))
    print()
    print("aggregate throughput (Gbps):")
    for name, result in per_scheme.items():
        series = " ".join(f"{value / 1e9:.1f}"
                          for value in result.aggregate_series())
        print(f"{name:<14}{series}")
    return 1 if _print_failures(failures) else 0


def _chaos_culprit_lines(capture, top: int = 3) -> List[str]:
    """Per-victim culprit table for the chaos report.

    For every diagnosed port: the worst-queueing-delay flow and the
    flows that filled its queue during its worst interval.
    """
    from .diagnosis.query import DiagnosisQuery

    query = DiagnosisQuery(capture.as_dict())
    lines: List[str] = []
    for label in query.labels():
        victims = query.victims(selector=label, top=1)
        if not victims:
            continue
        victim = victims[0]
        culprit_report = query.culprits(victim["flow"], selector=label,
                                        top=top)
        total = culprit_report["total_bytes"]
        bits = []
        for flow, size in culprit_report["rows"]:
            share = f"{100 * size / total:.0f}%" if total else "-"
            marker = "*" if flow == victim["flow"] else ""
            bits.append(f"flow {flow}{marker} {share}")
        delay_ms = victim["max_delay_ns"] / 1e6
        lines.append(
            f"  {label}: victim flow {victim['flow']} "
            f"(queue {culprit_report['queue']}, "
            f"max delay {delay_ms:.3f} ms) <- "
            + (", ".join(bits) if bits else "no enqueues in window"))
    if lines:
        lines = ["queue diagnosis (victim -> culprit fill, "
                 "* marks self-inflicted):"] + lines
    return lines


def _cmd_chaos(args) -> int:
    schedule = FaultSchedule.from_file(args.faults)
    with _diagnosis_session(args) as capture:
        session = _telemetry_session(args)
        trace = session.trace if session.active else None
        parallel = _parallel_requested(args)
        snapshot = autosave_ns = None
        if parallel:
            autosave_ns = _parallel_autosave_ns(args)
        elif _snapshot_requested(args):
            if len(args.schemes) > 1:
                raise ConfigurationError(
                    "chaos snapshots drive one scheme at a time; narrow "
                    "--schemes to one (or use --jobs with "
                    "--snapshot-every)")
            snapshot = _snapshot_policy(args, args.schemes[0], 1)
        try:
            with session:
                outcomes = run_chaos_sweep(
                    args.schemes, schedule, seed=args.seed,
                    retries=args.retries, num_queues=args.queues,
                    flows_per_queue=args.flows_per_queue,
                    duration_s=args.duration,
                    sample_interval_s=args.duration / 20,
                    wall_budget_s=args.wall_budget, trace=trace,
                    jobs=args.jobs,
                    checkpoint=_checkpoint_path(args) if parallel
                    else None,
                    resume=args.resume, snapshot=snapshot,
                    autosave_every_ns=autosave_ns)
        finally:
            _finish_telemetry(session, args)
        print(f"chaos: schedule {schedule.name!r} ({len(schedule)} "
              f"events) across {len(args.schemes)} scheme(s)")
        print("scheme".ljust(16) + "inj".rjust(4) + "rec".rjust(4)
              + "viol".rjust(6) + "J(pre)".rjust(8) + "J(fault)".rjust(9)
              + "J(post)".rjust(8) + "  status")
        failed = False
        for outcome in outcomes:
            if not outcome.ok:
                failed = True
                print(outcome.scheme.ljust(16)
                      + f"failed after {outcome.attempts} attempt(s): "
                      + str(outcome.error))
                continue
            result: ChaosResult = outcome.result
            status = ("ok" if outcome.attempts == 1
                      else f"ok (attempt {outcome.attempts})")
            if result.aborted is not None:
                failed = True
                status = f"aborted: {result.aborted}"
            if result.violations:
                failed = True
                status = "INVARIANT VIOLATED"
            print(result.scheme.ljust(16)
                  + str(result.injected).rjust(4)
                  + str(result.recovered).rjust(4)
                  + str(result.violations).rjust(6)
                  + f"{result.jain_before:.3f}".rjust(8)
                  + f"{result.jain_during:.3f}".rjust(9)
                  + f"{result.jain_after:.3f}".rjust(8)
                  + f"  {status}")
            if result.triage_bundle is not None:
                print(f"{'':16}triage bundle: {result.triage_bundle}")
        if capture is not None and capture.ports:
            for line in _chaos_culprit_lines(capture):
                print(line)
        _maybe_export([outcome.result.result for outcome in outcomes
                       if outcome.ok and outcome.result.result is not None],
                      args.csv)
        # Non-zero on any violation or abort: CI gates on this exit code.
        return 1 if failed else 0


def _cmd_competitive(args) -> int:
    # Fail fast on typo'd adversary names — before the telemetry session
    # opens and before run_competitive fans out any workers — so the
    # user sees the sorted valid-adversary list, mirroring the scheme
    # check.  run_competitive re-validates, but only after the session
    # (and its trace file) would already exist.
    for name in args.adversaries:
        adversary(name)
    session = _telemetry_session(args)
    trace = session.trace if session.active else None
    parallel = _parallel_requested(args)
    try:
        with session:
            grid = run_competitive(
                args.policies, args.adversaries, args.buffer_sizes,
                num_queues=args.queues, horizon=args.horizon,
                rounds=args.rounds, seed=args.seed, jobs=args.jobs,
                retries=args.retries,
                checkpoint=_checkpoint_path(args) if parallel else None,
                resume=args.resume, trace=trace)
    finally:
        _finish_telemetry(session, args)
    for line in report_lines(grid, lqd_limit=args.lqd_limit):
        print(line)
    if args.out:
        payload = {
            "policies": grid.policies,
            "adversaries": grid.adversaries,
            "buffer_sizes": grid.buffer_sizes,
            "lqd_limit": args.lqd_limit,
            "cells": grid.cells,
        }
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out} ({len(grid.cells)} cells)")
    # CI gates on this exit code: LQD above its proven guarantee means
    # the arena or the bound regressed, not that LQD got worse.
    if "lqd" in grid.policies and grid.violations("lqd", args.lqd_limit):
        return 1
    return 0


def _cmd_soak(args) -> int:
    from .soak import SoakScenario, run_case, run_soak, write_verdicts

    if args.replay:
        # Replay one scenario file (typically a triage bundle's
        # minimal.json) and print its verdict — the one-command
        # reproduction line every bundle's REPLAY.txt names.
        scenario = SoakScenario.from_file(args.replay)
        verdict = run_case(scenario)
        print(json.dumps(verdict, indent=2, sort_keys=True))
        return EXIT_OK if verdict["status"] == "ok" else EXIT_FAILURE

    session = _telemetry_session(args)
    trace = session.trace if session.active else None
    parallel = _parallel_requested(args)
    try:
        with session:
            soak = run_soak(
                args.seed, args.iterations, jobs=args.jobs,
                retries=args.retries,
                checkpoint=_checkpoint_path(args) if parallel else None,
                resume=args.resume, trace=trace,
                triage_dir=args.triage_dir, drill=args.drill)
    finally:
        _finish_telemetry(session, args)

    print("case".ljust(14) + "scheme".ljust(13) + "torture".ljust(18)
          + "checks".rjust(7) + "  status")
    for verdict in soak.verdicts:
        line = (verdict["digest"].ljust(14) + verdict["scheme"].ljust(13)
                + verdict["torture"].ljust(18)
                + str(verdict["checks"]).rjust(7)
                + f"  {verdict['status']}")
        if verdict["detail"]:
            line += f"  ({verdict['detail'][:60]})"
        print(line)
    if args.out:
        write_verdicts(args.out, soak.verdicts)
        print(f"wrote {args.out} ({len(soak.verdicts)} verdicts)")
    for bundle in soak.bundles:
        print(f"triage bundle: {bundle}")
    failures = soak.failures
    if failures:
        print(f"\nSOAK FAILURES: {len(failures)}/{len(soak.verdicts)} "
              "cases failed")
        return EXIT_FAILURE
    print(f"\nsoak clean: {len(soak.verdicts)} cases, "
          f"{sum(v['checks'] for v in soak.verdicts)} invariant sweeps")
    return EXIT_OK


def _cmd_profile(args) -> int:
    sim = Simulator()
    profiler = RunProfiler()
    profiler.attach(sim)
    try:
        run_scenario(args.scenario, args.scheme,
                     duration_s=args.duration, sim=sim)
    finally:
        profiler.detach()
    print(report.profile_table(
        profiler, title=f"profile: {args.scenario} ({args.scheme})",
        top=args.top))
    return 0


def _cmd_bench(args) -> int:
    from .perf import baseline as baseline_mod
    from .perf import bench

    try:
        report = bench.run_suite(
            quick=args.quick, scale=args.scale, repeats=args.repeats,
            progress=lambda name: print(f"bench: {name} ..."))
    except bench.BenchError as exc:
        print(f"BENCH FAILURE (semantics divergence): {exc}")
        return 1
    print()
    print(bench.format_table(report))
    out = args.out or bench.default_report_path()
    bench.write_report(report, out)
    print(f"\nwrote {out}")
    if args.emit_baseline:
        baseline = baseline_mod.make_baseline(report)
        bench.write_report(baseline, args.emit_baseline)
        print(f"wrote {args.emit_baseline}")
    if args.baseline:
        try:
            baseline = baseline_mod.load_baseline(args.baseline)
        except OSError as exc:
            print(f"error: cannot read {args.baseline}: {exc.strerror}")
            return 1
        violations = baseline_mod.compare(report, baseline,
                                          budget=args.budget)
        if violations:
            print(f"\nREGRESSION vs {args.baseline}:")
            for violation in violations:
                print(f"  {violation}")
            return 1
        print(f"\nno regressions vs {args.baseline} "
              f"(budget {args.budget:.0%})")
    return 0


def _parse_ns_window(text: str) -> Tuple[Optional[int], Optional[int]]:
    start_text, sep, end_text = text.partition(":")
    if not sep:
        raise argparse.ArgumentTypeError(
            "--window expects START:END nanoseconds (either side may be "
            "empty)")
    start = int(start_text) if start_text else None
    end = int(end_text) if end_text else None
    return start, end


def _cmd_diagnose(args) -> int:
    from .diagnosis import load_diagnosis
    from .diagnosis import query as diag_query

    query = diag_query.DiagnosisQuery(load_diagnosis(args.dump))
    drop_counts = (diag_query.trace_drop_counts(args.join_trace)
                   if args.join_trace else None)
    fct_rows = (diag_query.load_fct_csv(args.join_fct)
                if args.join_fct else None)
    victim = args.victim_flow
    fct_ms = None
    if args.victim_percentile is not None:
        if fct_rows is None:
            raise ConfigurationError(
                "--victim-percentile selects the victim from an FCT "
                "export; add --join-fct CSV (written by `repro fct "
                "--csv PREFIX`)")
        victim, fct_ms = diag_query.percentile_victim(
            fct_rows, args.victim_percentile)
    elif victim is not None and fct_rows is not None:
        fct_ms = next((fct for flow, fct, _size in fct_rows
                       if flow == victim), None)
    start_ns, end_ns = args.window if args.window else (None, None)
    lines: List[str] = []
    if victim is not None:
        culprit_report = query.culprits(victim, selector=args.port,
                                        top=args.top)
        lines.extend(diag_query.render_culprits(
            query, culprit_report, drop_counts=drop_counts,
            fct_ms=fct_ms))
        timeline_port = culprit_report["label"].split("/", 1)[-1]
        timeline_span = (culprit_report["start_ns"],
                         culprit_report["end_ns"])
    elif (args.window is not None or args.queue is not None
            or args.port is not None):
        label = query.single_port(args.port)
        lines.extend(diag_query.render_fill(
            query, label, queue=args.queue, start_ns=start_ns,
            end_ns=end_ns, top=args.top, drop_counts=drop_counts))
        timeline_port = label.split("/", 1)[-1]
        timeline_span = (start_ns, end_ns)
    else:
        lines.extend(diag_query.render_summary(query, top=args.top))
        timeline_port = None
        timeline_span = (None, None)
    if args.join_timeline:
        if timeline_port is None:
            timeline_port = query.single_port(args.port).split("/", 1)[-1]
        rows = diag_query.timeline_rows(
            args.join_timeline, timeline_port,
            start_ns=timeline_span[0], end_ns=timeline_span[1])
        lines.append(f"threshold timeline ({args.join_timeline}."
                     f"{timeline_port}.thresholds.csv):")
        if rows:
            lines.extend(f"  {row}" for row in rows)
        else:
            lines.append("  (no rows in the window; was the run driven "
                         "with --timeline-csv?)")
    print("\n".join(lines))
    return 0


# -- serving ------------------------------------------------------------------

def _cmd_serve(args) -> int:
    """Run the job-queue daemon until a SIGTERM drain completes."""
    import asyncio

    from .serve import ServeConfig, ServeDaemon
    from .sim.trace import TOPIC_SERVE_JOB, TraceBus

    trace = TraceBus()
    if not args.quiet:
        trace.subscribe(TOPIC_SERVE_JOB,
                        lambda **payload: print(
                            f"serve: {payload.get('detail', '')}",
                            flush=True))
    recorder = None
    if args.trace_out:
        from .telemetry.recorder import TraceRecorder
        from .telemetry.sinks import JsonlSink
        recorder = TraceRecorder(trace, JsonlSink(args.trace_out),
                                 topics=(TOPIC_SERVE_JOB,))
    config = ServeConfig(
        socket_path=args.socket, wal=args.wal, jobs=args.jobs,
        retries=args.retries, max_queue=args.max_queue,
        max_per_client=args.max_per_client,
        heartbeat_every_s=args.heartbeat,
        heartbeat_timeout_s=args.heartbeat_timeout,
        job_deadline_s=args.job_deadline, backoff_s=args.backoff,
        drain_timeout_s=args.drain_timeout,
        autosave_every_ns=(seconds(args.snapshot_every)
                           if args.snapshot_every else None),
        drill=args.drill, drill_interval_s=args.drill_interval,
        drill_seed=args.drill_seed)
    daemon = ServeDaemon(config, trace=trace)
    try:
        return asyncio.run(daemon.run())
    finally:
        if recorder is not None:
            recorder.close()
            print(f"wrote {args.trace_out} "
                  f"({recorder.records_written} records)")


def _load_job_params(text: str) -> Dict[str, Any]:
    """``--params``: inline JSON object, ``@file``, or ``-`` for stdin."""
    if text == "-":
        raw = sys.stdin.read()
    elif text.startswith("@"):
        with open(text[1:]) as handle:
            raw = handle.read()
    else:
        raw = text
    try:
        params = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"--params is not valid JSON: {exc}")
    if not isinstance(params, dict):
        raise ConfigurationError("--params must be a JSON object")
    return params


def _print_response(response: Dict[str, Any]) -> None:
    print(json.dumps(response, sort_keys=True))


def _cmd_submit(args) -> int:
    from .serve import STATUS_ACCEPTED, STATUS_OK, ServeClient

    client = ServeClient(args.socket, timeout=args.timeout)
    response = client.submit(args.kind, _load_job_params(args.params),
                             seed=args.seed, client=args.client,
                             wait=args.wait)
    _print_response(response)
    ok = response.get("status") in (STATUS_ACCEPTED, STATUS_OK)
    return EXIT_OK if ok else EXIT_FAILURE


def _cmd_jobs(args) -> int:
    from .serve import ServeClient

    response = ServeClient(args.socket, timeout=args.timeout).jobs()
    jobs = response.get("jobs", [])
    if not jobs:
        print("no jobs")
        return EXIT_OK
    print("key".ljust(34) + "state".ljust(9) + "att".rjust(4)
          + "  client")
    for job in jobs:
        print(str(job.get("key", "")).ljust(34)
              + str(job.get("state", "")).ljust(9)
              + str(job.get("attempts", 0)).rjust(4)
              + f"  {job.get('client', '')}")
    return EXIT_OK


def _cmd_result(args) -> int:
    from .serve import STATUS_OK, ServeClient

    client = ServeClient(args.socket, timeout=args.timeout)
    response = client.result(args.key, wait=args.wait)
    _print_response(response)
    return EXIT_OK if response.get("status") == STATUS_OK else EXIT_FAILURE


def _cmd_trace_validate(args) -> int:
    try:
        count, errors = validate_trace_file(args.path,
                                            max_errors=args.max_errors)
    except OSError as exc:
        print(f"error: cannot read {args.path}: {exc.strerror}")
        return 1
    print(f"{args.path}: {count} records")
    if not errors:
        print("OK")
        return 0
    for error in errors:
        print(f"error: {error}")
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DynaQ reproduction: run the paper's experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-schemes").set_defaults(func=_cmd_list_schemes)
    sub.add_parser("workloads").set_defaults(func=_cmd_workloads)
    sub.add_parser("hw-cost").set_defaults(func=_cmd_hw_cost)

    def add_common(p, default_schemes="dynaq,besteffort,pql"):
        p.add_argument("--schemes", type=_split_schemes,
                       default=_split_schemes(default_schemes))
        p.add_argument("--csv", default=None,
                       help="export series to CSV files with this prefix")
        p.add_argument("--trace-out", default=None, metavar="PATH",
                       help="record a structured JSONL event trace")
        p.add_argument("--trace-topics", default=None, metavar="T1,T2",
                       help="restrict the trace to these topics")
        p.add_argument("--trace-window", type=_parse_window, default=None,
                       metavar="START:END",
                       help="only record events inside [START, END] ns")
        p.add_argument("--flight-dump", default=None, metavar="PATH",
                       help="arm the flight recorder; dump last events "
                            "here on drop bursts or errors")
        p.add_argument("--drop-burst-count", type=int, default=32,
                       help="drops per ms that count as a burst anomaly")
        p.add_argument("--timeline-csv", default=None, metavar="PREFIX",
                       help="export per-port threshold/steal series to "
                            "PREFIX.<port>.*.csv")
        p.add_argument("--diagnose-out", default=None, metavar="PATH",
                       help="maintain per-packet queue-diagnosis "
                            "sketches and write the dump here (serial "
                            "runs only; query with `repro diagnose`)")
        p.add_argument("--diagnose-window", type=float, default=None,
                       metavar="SECONDS",
                       help="diagnosis sketch window width "
                            "(default 0.001 s)")

    def add_faults(p):
        p.add_argument("--faults", default=None, metavar="PATH",
                       help="inject faults from this JSON schedule "
                            "(see docs/robustness.md)")

    def add_snapshot(p):
        p.add_argument("--snapshot-every", type=float, default=None,
                       metavar="SECONDS",
                       help="autosave an in-flight snapshot every so "
                            "many simulated seconds (serial runs need "
                            "--snapshot-out; parallel runs save per job "
                            "next to the checkpoint file)")
        p.add_argument("--snapshot-out", default=None, metavar="PATH",
                       help="snapshot file; each autosave atomically "
                            "replaces it (multi-scheme runs write "
                            "PATH.<scheme>)")
        p.add_argument("--restore", default=None, metavar="PATH",
                       help="resume one run from a snapshot instead of "
                            "starting at t=0 (the restored world keeps "
                            "its own telemetry sinks, so --trace-out "
                            "and friends are ignored)")
        p.add_argument("--snapshot-kill-after", type=int, default=None,
                       metavar="N",
                       help="crash drill: exit 3 right after the Nth "
                            "autosave; a restored run never re-trips "
                            "(see docs/robustness.md)")
        p.add_argument("--triage-dir", default=None, metavar="DIR",
                       help="on a watchdog trip or simulation error, "
                            "write a triage bundle (snapshot + flight "
                            "dump + profile) into this directory")

    def add_parallel(p, retries=None):
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="run sweep points in N crash-isolated worker "
                            "processes (output stays byte-identical to "
                            "--jobs 1; see docs/parallel.md)")
        p.add_argument("--checkpoint", default=None, metavar="PATH",
                       help="checkpoint file for finished points "
                            "(default repro-<command>.checkpoint.jsonl "
                            "when the parallel executor is active)")
        p.add_argument("--resume", action="store_true",
                       help="replay finished points from the checkpoint "
                            "file instead of re-running them")
        if retries is not None:
            p.add_argument("--retries", type=int, default=retries,
                           help="re-runs with a derived seed after a "
                                "simulation error or worker death")

    p = sub.add_parser("convergence", help="Fig. 3 scenario")
    add_common(p)
    add_faults(p)
    add_snapshot(p)
    p.add_argument("--duration", type=float, default=0.5)
    p.set_defaults(func=_cmd_convergence)

    p = sub.add_parser("motivation", help="Fig. 1 scenario")
    add_common(p, default_schemes="besteffort,dynaq")
    add_faults(p)
    add_snapshot(p)
    p.add_argument("--duration", type=float, default=0.5)
    p.set_defaults(func=_cmd_motivation)

    p = sub.add_parser("fair-sharing", help="Fig. 5 scenario")
    add_common(p)
    add_faults(p)
    add_snapshot(p)
    p.add_argument("--time-unit", type=float, default=0.12)
    p.set_defaults(func=_cmd_fair_sharing)

    p = sub.add_parser("weighted", help="Fig. 6 scenario")
    add_common(p)
    add_faults(p)
    add_snapshot(p)
    p.add_argument("--weights", default="4,3,2,1")
    p.add_argument("--duration", type=float, default=0.5)
    p.set_defaults(func=_cmd_weighted)

    p = sub.add_parser("protocol-mix", help="Fig. 7 scenario")
    add_common(p, default_schemes="dynaq")
    add_faults(p)
    add_snapshot(p)
    p.add_argument("--time-unit", type=float, default=0.12)
    p.set_defaults(func=_cmd_protocol_mix)

    p = sub.add_parser(
        "chaos", help="replay a fault schedule, report isolation "
                      "degradation and invariant violations")
    add_common(p, default_schemes="dynaq")
    p.add_argument("--scheme", dest="schemes", type=_split_schemes,
                   help="alias for --schemes")
    p.add_argument("--faults", required=True, metavar="PATH",
                   help="JSON fault schedule (see docs/robustness.md)")
    p.add_argument("--queues", type=int, default=4)
    p.add_argument("--flows-per-queue", type=int, default=4)
    p.add_argument("--duration", type=float, default=0.4,
                   help="measured window in seconds (stretched to cover "
                        "the schedule)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--retries", type=int, default=1,
                   help="re-runs with a derived seed after a "
                        "simulation error")
    p.add_argument("--wall-budget", type=float, default=120.0,
                   help="abort a scheme's run after this many real "
                        "seconds (partial metrics are kept)")
    add_parallel(p)
    add_snapshot(p)
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser("fct", help="Figs. 8-9 scenario")
    add_common(p, default_schemes="dynaq,besteffort,pql")
    p.add_argument("--loads", default="0.3,0.5")
    p.add_argument("--flows", type=int, default=120)
    p.add_argument("--workload", default="web_search",
                   choices=workload_names())
    p.add_argument("--truncate-mb", type=float, default=12.0,
                   help="clip the flow-size tail (0 = no clipping)")
    p.add_argument("--seed", type=int, default=1)
    add_parallel(p, retries=0)
    add_snapshot(p)
    p.set_defaults(func=_cmd_fct)

    p = sub.add_parser("incast", help="microburst query-completion time")
    add_common(p, default_schemes="besteffort,pql,dynaq,dynaq-evict")
    p.add_argument("--workers", type=int, default=16)
    p.add_argument("--horizon", type=float, default=2.5)
    add_parallel(p, retries=0)
    add_snapshot(p)
    p.set_defaults(func=_cmd_incast)

    p = sub.add_parser("static-sim", help="Figs. 10-12 scenario")
    add_common(p, default_schemes="dynaq,pql")
    p.add_argument("--rate", choices=["10g", "100g"], default="10g")
    p.add_argument("--queues", type=int, default=8)
    p.add_argument("--first-stop-ms", type=float, default=50.0)
    p.add_argument("--stop-step-ms", type=float, default=12.0)
    p.add_argument("--duration-ms", type=float, default=160.0)
    p.add_argument("--sample-ms", type=float, default=5.0)
    add_parallel(p, retries=0)
    add_snapshot(p)
    p.set_defaults(func=_cmd_static_sim)

    p = sub.add_parser(
        "competitive",
        help="empirical competitive ratios: every policy against "
             "adversarial arrival patterns vs a clairvoyant bound "
             "(see docs/competitive.md)")
    p.add_argument("--policies", type=_split_schemes,
                   default=list(DEFAULT_POLICIES))
    p.add_argument("--adversaries", type=_split_schemes,
                   default=adversary_names())
    p.add_argument("--buffer-sizes", type=_split_ints, default=[16, 32, 64],
                   metavar="B1,B2", help="shared buffer sizes in cells")
    p.add_argument("--queues", type=int, default=4,
                   help="output ports sharing the buffer")
    p.add_argument("--rounds", type=int, default=3,
                   help="arena runs per grid cell (the random adversary "
                        "re-seeds each round)")
    p.add_argument("--horizon", type=int, default=0,
                   help="arrival slots per round (0 = each adversary's "
                        "own default)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--lqd-limit", type=float, default=1.5,
                   help="fail (exit 1) if LQD's measured ratio exceeds "
                        "this; 1.5 is its proven guarantee")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the full report grid as JSON")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="record competitive.round events as JSONL")
    p.add_argument("--trace-topics", default=None, metavar="T1,T2",
                   help="restrict the trace to these topics")
    p.add_argument("--trace-window", type=_parse_window, default=None,
                   metavar="START:END",
                   help="only record events inside [START, END] ns")
    add_parallel(p, retries=0)
    p.set_defaults(func=_cmd_competitive)

    p = sub.add_parser(
        "soak",
        help="randomized chaos soak: generated fault/perf/torture "
             "scenarios under a central invariant engine, failures "
             "minimized to replayable bundles (see docs/robustness.md)")
    p.add_argument("--seed", type=int, default=1,
                   help="master seed; the case list is a pure function "
                        "of (seed, iterations)")
    p.add_argument("--iterations", type=int, default=10,
                   help="scenarios to generate and run")
    p.add_argument("--triage-dir", default=None, metavar="DIR",
                   help="minimize each failing case and write its "
                        "bundle-<digest>/ triage bundle (original + "
                        "minimal scenario, verdict, replay command) "
                        "into this directory")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write one verdict per case as JSONL")
    p.add_argument("--drill", action="store_true",
                   help="known-bad run: inject an always-failing "
                        "invariant into the first case, proving the "
                        "violation -> shrink -> bundle pipeline works "
                        "(exits 1 by design)")
    p.add_argument("--replay", default=None, metavar="PATH",
                   help="run one scenario JSON (e.g. a bundle's "
                        "minimal.json or a scenarios/ catalog entry) "
                        "instead of generating cases; prints its "
                        "verdict")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="record soak.case events as JSONL")
    p.add_argument("--trace-topics", default=None, metavar="T1,T2",
                   help="restrict the trace to these topics")
    p.add_argument("--trace-window", type=_parse_window, default=None,
                   metavar="START:END",
                   help="only record events inside [START, END] ns")
    add_parallel(p, retries=0)
    p.set_defaults(func=_cmd_soak)

    p = sub.add_parser(
        "profile", help="run one scenario under the event-loop profiler")
    p.add_argument("scenario", choices=scenario_names())
    p.add_argument("--scheme", default="dynaq")
    p.add_argument("--duration", type=float, default=0.2)
    p.add_argument("--top", type=int, default=12,
                   help="callback rows to show")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "bench", help="run the hot-path microbenchmark suite "
                      "(reference vs fast, see docs/performance.md)")
    p.add_argument("--quick", action="store_true",
                   help="~8x smaller workloads (CI smoke)")
    p.add_argument("--scale", type=float, default=1.0,
                   help="workload size multiplier")
    p.add_argument("--repeats", type=int, default=3,
                   help="interleaved reference/fast pairs per bench; "
                        "min wall time is reported (default 3)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="report path (default BENCH_<date>.json)")
    p.add_argument("--baseline", default=None, metavar="PATH",
                   help="compare against this baseline; exit 1 on "
                        "regression")
    p.add_argument("--budget", type=float, default=0.25,
                   help="allowed fractional speedup regression "
                        "(default 0.25)")
    p.add_argument("--emit-baseline", default=None, metavar="PATH",
                   help="also write a floored baseline derived from "
                        "this run")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "diagnose", help="query a --diagnose-out dump: victim flows, "
                         "culprit attribution, queue fill reports")
    p.add_argument("dump", help="diagnosis JSON written by --diagnose-out")
    victim = p.add_mutually_exclusive_group()
    victim.add_argument("--victim-flow", type=int, default=None,
                        metavar="FLOW",
                        help="attribute this flow's worst queueing delay "
                             "to the flows that filled its queue")
    victim.add_argument("--victim-percentile", type=float, default=None,
                        metavar="P",
                        help="pick the victim at this FCT percentile "
                             "(needs --join-fct)")
    p.add_argument("--port", default=None, metavar="LABEL",
                   help="restrict to one diagnosed port (exact label, "
                        "bare port name, or substring)")
    p.add_argument("--queue", type=int, default=None,
                   help="fill report: restrict to this service queue")
    p.add_argument("--window", type=_parse_ns_window, default=None,
                   metavar="T0:T1",
                   help="fill report: simulated-time window in ns "
                        "(either side may be empty)")
    p.add_argument("--top", type=int, default=10,
                   help="rows per table (default 10)")
    p.add_argument("--join-fct", default=None, metavar="CSV",
                   help="join flow FCTs from a `repro fct --csv` export")
    p.add_argument("--join-trace", default=None, metavar="JSONL",
                   help="join per-flow drop counts from a --trace-out "
                        "file")
    p.add_argument("--join-timeline", default=None, metavar="PREFIX",
                   help="append threshold rows from a --timeline-csv "
                        "export covering the reported window")
    p.set_defaults(func=_cmd_diagnose)

    p = sub.add_parser(
        "trace-validate", help="schema-check a JSONL trace file")
    p.add_argument("path")
    p.add_argument("--max-errors", type=int, default=20)
    p.set_defaults(func=_cmd_trace_validate)

    def add_socket(p, *, timeout=True):
        p.add_argument("--socket", required=True, metavar="PATH",
                       help="unix socket the daemon listens on")
        if timeout:
            p.add_argument("--timeout", type=float, default=30.0,
                           help="transport timeout for non-waiting "
                                "requests (seconds)")

    p = sub.add_parser(
        "serve", help="run the simulation job-queue daemon "
                      "(see docs/serving.md)")
    add_socket(p, timeout=False)
    p.add_argument("--wal", default="repro-serve.wal.jsonl",
                   metavar="PATH",
                   help="write-ahead job log; replayed on restart so "
                        "accepted jobs survive a daemon crash")
    p.add_argument("--jobs", type=int, default=2, metavar="N",
                   help="crash-isolated worker slots")
    p.add_argument("--retries", type=int, default=2,
                   help="extra attempts per job (reseeded, or restored "
                        "from the job's autosave after a worker death)")
    p.add_argument("--max-queue", type=int, default=64,
                   help="queued-job bound before LQD shedding kicks in")
    p.add_argument("--max-per-client", type=int, default=16,
                   help="live jobs one client may hold (fair share)")
    p.add_argument("--heartbeat", type=float, default=0.5,
                   metavar="SECONDS", help="worker heartbeat cadence")
    p.add_argument("--heartbeat-timeout", type=float, default=5.0,
                   metavar="SECONDS",
                   help="silence before a worker is declared hung and "
                        "SIGKILLed (0 = off)")
    p.add_argument("--job-deadline", type=float, default=0.0,
                   metavar="SECONDS",
                   help="wall-clock cap per job attempt (0 = off)")
    p.add_argument("--backoff", type=float, default=0.25,
                   metavar="SECONDS",
                   help="retry backoff base; doubles per attempt with "
                        "deterministic jitter (0 = off)")
    p.add_argument("--drain-timeout", type=float, default=10.0,
                   metavar="SECONDS",
                   help="grace period after SIGTERM before running "
                        "jobs are cut (their autosaves survive)")
    p.add_argument("--snapshot-every", type=float, default=None,
                   metavar="SECONDS",
                   help="autosave every job's simulation on this "
                        "simulated-seconds cadence so dead workers "
                        "migrate mid-flight instead of restarting")
    p.add_argument("--drill", action="store_true",
                   help="chaos drill: SIGKILL a random live worker on "
                        "a cadence to exercise migration continuously")
    p.add_argument("--drill-interval", type=float, default=1.0,
                   metavar="SECONDS")
    p.add_argument("--drill-seed", type=int, default=1)
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="record serve.job lifecycle events as JSONL")
    p.add_argument("--quiet", action="store_true",
                   help="do not echo lifecycle events to stdout")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "submit", help="submit one job to a running daemon")
    add_socket(p)
    p.add_argument("--kind", required=True, choices=sorted(JOB_KINDS))
    p.add_argument("--params", required=True, metavar="JSON",
                   help="job parameters: inline JSON object, @file, or "
                        "- for stdin")
    p.add_argument("--seed", type=int, default=None,
                   help="base seed (retries derive replacements)")
    p.add_argument("--client", default="",
                   help="client name for fair-share accounting")
    p.add_argument("--wait", action="store_true",
                   help="block until the job reaches a terminal state")
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser("jobs", help="list a running daemon's jobs")
    add_socket(p)
    p.set_defaults(func=_cmd_jobs)

    p = sub.add_parser(
        "result", help="fetch one job's outcome from a daemon")
    p.add_argument("key", help="job key returned by submit")
    add_socket(p)
    p.add_argument("--wait", action="store_true",
                   help="block until the job reaches a terminal state")
    p.set_defaults(func=_cmd_result)

    return parser


def _sigterm_to_interrupt(signum, frame) -> None:
    """Route SIGTERM through the KeyboardInterrupt cleanup path.

    A supervisor's TERM then gets the same treatment as an operator's
    Ctrl-C: partial results are reported, the flight recorder dumps,
    checkpoints stay resumable, and the process exits 2.  The serve
    daemon overrides this with its own drain handler on the event loop.
    """
    raise KeyboardInterrupt


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    previous = None
    if threading.current_thread() is threading.main_thread():
        previous = signal.signal(signal.SIGTERM, _sigterm_to_interrupt)
    try:
        # Handlers return EXIT_OK or EXIT_FAILURE (0/1) directly.
        return args.func(args)
    except KeyboardInterrupt:
        # The telemetry session has already dumped the flight recorder
        # and _run_traced has reported partial results on the way up.
        print("\ninterrupted")
        return EXIT_ERROR
    except SnapshotHalt as exc:
        # The deliberate --snapshot-kill-after drill: distinct exit code
        # so scripts can tell "crashed on cue" from a real error.
        print(exc)
        return EXIT_DRILL
    except ReproError as exc:
        kind = type(exc).__name__
        print(f"error ({kind}): {exc}")
        return EXIT_ERROR
    except BrokenPipeError:
        # Output piped into a closed reader (`repro result ... | head`):
        # die the way a SIGPIPEd unix tool would, without a traceback.
        # stdout is swapped for devnull so the interpreter's final
        # implicit flush cannot raise the same error again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 128 + signal.SIGPIPE
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)
