"""Soak scenarios: a bounded grammar of randomized chaos runs.

A :class:`SoakScenario` is one fully declarative test case for the soak
harness (``repro soak``): which scheme to run, how big the topology is,
which perf switches are flipped, which faults fire when, how often to
snapshot, and which torture mode (kill/restore, snapshot corruption) to
apply.  Scenarios round-trip through plain JSON so a failing case can be
written to disk, minimized by the shrinker, attached to a bug report,
and replayed with one command::

    python -m repro soak --replay triage/bundle-<digest>/minimal.json

:class:`ScenarioGenerator` samples scenarios from a deliberately
*bounded* grammar — small topologies, short horizons, fault schedules
that are non-overlapping by construction — so every case finishes in
well under a second and a fixed-seed soak is reproducible forever.
Everything is validated eagerly with
:class:`~repro.errors.ConfigurationError` (unknown schemes, faults past
the horizon, torture without a snapshot cadence) so a hand-edited
scenario file fails at load time, not mid-soak.
"""

from __future__ import annotations

import hashlib
import json
import random
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..errors import ConfigurationError
from ..faults import FaultSchedule
from ..perf.config import FAST, REFERENCE, PerfConfig
from ..sim.units import milliseconds

PathLike = Union[str, Path]

#: Schemes the generator samples from: the paper's scheme (both victim
#: policies) plus the drop-based comparators.  ECN schemes are excluded
#: only because they pair with DCTCP senders, which would double the
#: grammar without exercising any new invariant.
SCHEMES = ("dynaq", "dynaq-evict", "dt", "fb", "bshare", "lqd", "pql",
           "besteffort")

#: Torture modes: what the harness does *around* the simulation.
TORTURE_MODES = ("none", "kill-restore", "corrupt-snapshot")

#: Perf switches the generator flips on top of its base config.  These
#: are the switches with real datapath branches (scheduler swap, batch
#: commit/unwind, inflight tracking, decision caching, victim search) —
#: the ones a soak most wants to catch interacting badly.
PERF_SWITCHES = ("calendar_queue", "batched_link_advance",
                 "heap_scan_inflight", "cached_decisions",
                 "incremental_victim", "inline_hot_calls")

#: Fault target used by every generated schedule: the bottleneck port of
#: the bulk-flow star (every packet crosses it, so faults there exercise
#: the most state).
BOTTLENECK = "s0->h0"

_SCENARIO_KEYS = frozenset({
    "name", "seed", "scheme", "num_queues", "flows_per_queue",
    "duration_ms", "sample_interval_ms", "perf_base", "perf", "faults",
    "snapshot_every_ms", "torture", "check_every_ms", "drill",
})


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(f"soak scenario: {message}")


class SoakScenario:
    """One declarative soak case (see module docstring).

    Parameters mirror the JSON form one-to-one; every field has a
    sensible default so hand-written scenarios stay short.  ``perf`` is
    a dict of switch overrides applied on top of ``perf_base``
    ("fast" or "reference").  ``drill`` arms an always-failing
    invariant — the CI known-bad case proving the violation →
    shrink → bundle pipeline works end to end.
    """

    def __init__(self, *, seed: int = 1, scheme: str = "dynaq",
                 num_queues: int = 4, flows_per_queue: int = 2,
                 duration_ms: float = 24.0,
                 sample_interval_ms: float = 3.0,
                 perf_base: str = "fast",
                 perf: Optional[Dict[str, bool]] = None,
                 faults: Optional[Dict[str, Any]] = None,
                 snapshot_every_ms: Optional[float] = None,
                 torture: str = "none",
                 check_every_ms: float = 2.0,
                 drill: bool = False,
                 name: str = "") -> None:
        self.seed = seed
        self.scheme = scheme
        self.num_queues = num_queues
        self.flows_per_queue = flows_per_queue
        self.duration_ms = float(duration_ms)
        self.sample_interval_ms = float(sample_interval_ms)
        self.perf_base = perf_base
        self.perf = dict(perf or {})
        self.faults = faults
        self.snapshot_every_ms = (None if snapshot_every_ms is None
                                  else float(snapshot_every_ms))
        self.torture = torture
        self.check_every_ms = float(check_every_ms)
        self.drill = bool(drill)
        self.name = name
        self._validate()

    # -- validation ------------------------------------------------------------

    def _validate(self) -> None:
        from ..experiments.runner import scheme as lookup_scheme
        lookup_scheme(self.scheme)  # ConfigurationError with valid names
        _require(isinstance(self.seed, int),
                 f"seed must be an integer, got {self.seed!r}")
        _require(1 <= self.num_queues <= 8,
                 f"num_queues must be in [1, 8], got {self.num_queues}")
        _require(1 <= self.flows_per_queue <= 8,
                 f"flows_per_queue must be in [1, 8], "
                 f"got {self.flows_per_queue}")
        _require(self.duration_ms > 0,
                 f"duration_ms must be positive, got {self.duration_ms}")
        _require(0 < self.sample_interval_ms <= self.duration_ms,
                 "sample_interval_ms must be positive and no longer "
                 "than the run")
        _require(self.perf_base in ("fast", "reference"),
                 f"perf_base must be 'fast' or 'reference', "
                 f"got {self.perf_base!r}")
        known = set(PerfConfig.__slots__)
        for key, value in self.perf.items():
            _require(key in known, f"unknown perf switch {key!r}")
            _require(isinstance(value, bool),
                     f"perf switch {key!r} must be a boolean")
        _require(self.torture in TORTURE_MODES,
                 f"torture must be one of {list(TORTURE_MODES)}, "
                 f"got {self.torture!r}")
        _require(self.check_every_ms > 0,
                 "check_every_ms must be positive")
        if self.snapshot_every_ms is not None:
            _require(0 < self.snapshot_every_ms < self.duration_ms,
                     "snapshot_every_ms must fall inside the run")
        if self.torture != "none":
            _require(self.snapshot_every_ms is not None,
                     f"torture {self.torture!r} needs snapshot_every_ms")
        # Parse (and thereby validate) the fault schedule, including the
        # overlap rejection in FaultSchedule itself, then pin every
        # event inside the horizon: a fault past the end would silently
        # never fire, which for a soak means untested coverage that
        # *looks* tested.
        schedule = self.fault_schedule()
        if schedule is not None:
            schedule.validate_horizon(self.duration_ns,
                                      context="soak scenario")

    # -- derived views ---------------------------------------------------------

    @property
    def duration_ns(self) -> int:
        return milliseconds(self.duration_ms)

    @property
    def sample_interval_ns(self) -> int:
        return milliseconds(self.sample_interval_ms)

    @property
    def check_every_ns(self) -> int:
        return milliseconds(self.check_every_ms)

    @property
    def snapshot_every_ns(self) -> Optional[int]:
        if self.snapshot_every_ms is None:
            return None
        return milliseconds(self.snapshot_every_ms)

    def fault_schedule(self) -> Optional[FaultSchedule]:
        if self.faults is None:
            return None
        return FaultSchedule.from_dict(self.faults)

    def perf_config(self) -> PerfConfig:
        base = FAST if self.perf_base == "fast" else REFERENCE
        return base.clone(**self.perf) if self.perf else base

    @property
    def digest(self) -> str:
        """Stable content identity (12 hex chars) for logs and bundles."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:12]

    # -- (de)serialisation -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        spec: Dict[str, Any] = {
            "seed": self.seed, "scheme": self.scheme,
            "num_queues": self.num_queues,
            "flows_per_queue": self.flows_per_queue,
            "duration_ms": self.duration_ms,
            "sample_interval_ms": self.sample_interval_ms,
            "perf_base": self.perf_base,
            "torture": self.torture,
            "check_every_ms": self.check_every_ms,
        }
        if self.name:
            spec["name"] = self.name
        if self.perf:
            spec["perf"] = dict(self.perf)
        if self.faults is not None:
            spec["faults"] = self.faults
        if self.snapshot_every_ms is not None:
            spec["snapshot_every_ms"] = self.snapshot_every_ms
        if self.drill:
            spec["drill"] = True
        return spec

    def replace(self, **overrides: Any) -> "SoakScenario":
        """A validated copy with some fields replaced (shrinker steps)."""
        spec = self.to_dict()
        for key, value in overrides.items():
            if value is None and key in ("faults", "snapshot_every_ms"):
                spec.pop(key, None)
            else:
                spec[key] = value
        return SoakScenario.from_dict(spec)

    @classmethod
    def from_dict(cls, spec: Any) -> "SoakScenario":
        if not isinstance(spec, dict):
            raise ConfigurationError(
                f"soak scenario must be a JSON object, got {spec!r}")
        unknown = set(spec) - _SCENARIO_KEYS
        if unknown:
            raise ConfigurationError(
                f"soak scenario has unknown keys {sorted(unknown)}")
        return cls(**spec)

    @classmethod
    def from_file(cls, path: PathLike) -> "SoakScenario":
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read soak scenario {path}: {exc}") from exc
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"soak scenario {path} is not valid JSON: {exc}") from exc
        scenario = cls.from_dict(spec)
        if not scenario.name:
            scenario.name = path.stem
        return scenario

    def write(self, path: PathLike) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2,
                                   sort_keys=True) + "\n")
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SoakScenario {self.digest} {self.scheme} "
                f"q={self.num_queues} f={self.flows_per_queue} "
                f"{self.perf_base} torture={self.torture}>")


# ---------------------------------------------------------------------------
# The generator
# ---------------------------------------------------------------------------

class ScenarioGenerator:
    """Deterministic scenario sampler: ``(master_seed, index) -> case``.

    Each case gets its own :class:`random.Random` seeded from the master
    seed and the case index (string-seeded, so the derivation is stable
    across interpreter builds), which is what lets a parallel soak hand
    case *i* to any worker and still match the serial case list exactly.
    """

    def __init__(self, seed: int = 1) -> None:
        self.seed = seed

    def scenario(self, index: int) -> SoakScenario:
        rng = random.Random(f"repro-soak:{self.seed}:{index}")
        duration_ms = rng.choice([18.0, 24.0, 30.0, 36.0])
        scheme = rng.choice(SCHEMES)
        num_queues = rng.randint(2, 4)
        spec: Dict[str, Any] = {
            "seed": self.seed,
            "name": f"soak-{self.seed}-{index}",
            "scheme": scheme,
            "num_queues": num_queues,
            "flows_per_queue": rng.randint(1, 3),
            "duration_ms": duration_ms,
            "sample_interval_ms": duration_ms / 8,
            "perf_base": rng.choice(["fast", "fast", "reference"]),
            "check_every_ms": duration_ms / 12,
        }
        perf = self._perf_overrides(rng)
        if perf:
            spec["perf"] = perf
        faults = self._fault_events(rng, scheme, num_queues, duration_ms)
        if faults:
            spec["faults"] = {"name": spec["name"], "events": faults}
        torture = rng.choice(["none", "none", "kill-restore",
                              "kill-restore", "corrupt-snapshot"])
        if torture != "none":
            spec["torture"] = torture
            spec["snapshot_every_ms"] = round(
                duration_ms * rng.choice([0.25, 0.3, 0.35]), 3)
        return SoakScenario.from_dict(spec)

    def generate(self, count: int, start: int = 0) -> List[SoakScenario]:
        return [self.scenario(start + i) for i in range(count)]

    # -- grammar pieces --------------------------------------------------------

    @staticmethod
    def _perf_overrides(rng: random.Random) -> Dict[str, bool]:
        flips = rng.randint(0, 2)
        overrides: Dict[str, bool] = {}
        for switch in rng.sample(PERF_SWITCHES, flips):
            overrides[switch] = rng.random() < 0.5
        return dict(sorted(overrides.items()))

    @staticmethod
    def _fault_events(rng: random.Random, scheme: str, num_queues: int,
                      duration_ms: float) -> List[Dict[str, Any]]:
        """0-3 faults, non-overlapping by slotted construction.

        The window [20%, 80%] of the run is split into equal slots, one
        fault per slot with its duration capped inside the slot — so no
        two intervals can overlap and everything recovers before the
        horizon, satisfying the schedule validators by construction.
        """
        count = rng.randint(0, 3)
        if not count:
            return []
        window_start = duration_ms * 0.2
        slot_ms = (duration_ms * 0.6) / count
        events: List[Dict[str, Any]] = []
        for slot in range(count):
            start_ms = window_start + slot * slot_ms
            kind = rng.choice(["link_flap", "stall", "corrupt",
                               "reconfigure"])
            event: Dict[str, Any] = {
                "time_ms": round(start_ms + slot_ms * 0.1, 3),
                "kind": kind, "target": BOTTLENECK,
            }
            if kind == "reconfigure":
                event["weights"] = [rng.choice([1, 2, 3])
                                    for _ in range(num_queues)]
            else:
                event["duration_ms"] = round(
                    slot_ms * rng.uniform(0.2, 0.6), 3)
                if kind == "corrupt":
                    event["rate"] = round(rng.uniform(0.001, 0.01), 4)
            events.append(event)
        return events
