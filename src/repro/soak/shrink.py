"""Scenario minimization: greedy delta-debugging over the soak grammar.

When a soak case fails (invariant trip, restore divergence, silently
accepted corruption, unhandled simulation error), the raw scenario is
rarely the smallest one that fails — it carries faults, flows, queues,
perf switches, and torture plumbing that have nothing to do with the
bug.  :func:`shrink` walks a fixed list of reduction passes (drop
faults, fewer flows, fewer queues, shorter horizon, strip perf
overrides, drop the torture mode) and keeps each reduction only if the
*same class* of failure still reproduces, looping to a fixed point.

The result is written as a **triage bundle** by
:func:`write_soak_bundle`::

    bundle-<digest>/
      scenario.json   the original failing scenario
      minimal.json    the shrunken scenario (still failing)
      verdict.json    the minimal scenario's verdict
      REPLAY.txt      the one-command replay line

Reproduction is judged by verdict ``status`` equality — a scenario that
started failing with ``divergence`` must keep failing with
``divergence``, not mutate into some other failure halfway through the
shrink (which would minimize a different bug).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Union

from ..errors import ConfigurationError
from .runner import run_case
from .scenario import SoakScenario

PathLike = Union[str, Path]

#: Hard ceiling on candidate evaluations per shrink, so a flaky
#: reproducer cannot spin the minimizer forever.
MAX_ATTEMPTS = 48


class ShrinkResult(NamedTuple):
    """The outcome of one minimization."""

    minimal: SoakScenario        # smallest still-failing scenario
    verdict: Dict[str, Any]      # the minimal scenario's verdict
    attempts: int                # candidate evaluations spent
    removed: List[str]           # human-readable reduction log


def _try_replace(scenario: SoakScenario,
                 **overrides: Any) -> Optional[SoakScenario]:
    """``scenario.replace`` that skips invalid candidates.

    A reduction can break a scenario's internal consistency (halving
    the horizon past a fault's recovery time, say); such candidates are
    simply not proposed rather than aborting the whole shrink.
    """
    try:
        return scenario.replace(**overrides)
    except ConfigurationError:
        return None


def _drop_each_fault(scenario: SoakScenario) -> List[SoakScenario]:
    """Candidates with the whole schedule, then single events, removed."""
    if scenario.faults is None:
        return []
    events = scenario.faults.get("events", [])
    candidates = [_try_replace(scenario, faults=None)]
    for index in range(len(events)):
        remaining = events[:index] + events[index + 1:]
        if remaining:
            candidates.append(_try_replace(
                scenario, faults={**scenario.faults, "events": remaining}))
    return [c for c in candidates if c is not None]


def _fewer_flows(scenario: SoakScenario) -> List[SoakScenario]:
    if scenario.flows_per_queue <= 1:
        return []
    candidates = [
        _try_replace(scenario, flows_per_queue=1),
        _try_replace(scenario,
                     flows_per_queue=max(1, scenario.flows_per_queue // 2)),
    ]
    return [c for c in candidates if c is not None]


def _fewer_queues(scenario: SoakScenario) -> List[SoakScenario]:
    candidates = []
    for queues in (1, scenario.num_queues // 2):
        if 1 <= queues < scenario.num_queues:
            candidates.append(_try_replace(scenario, num_queues=queues))
    return [c for c in candidates if c is not None]


def _shorter(scenario: SoakScenario) -> List[SoakScenario]:
    """Halve the horizon, rescaling the cadences that must fit inside."""
    duration = scenario.duration_ms / 2
    if duration < 4.0:
        return []
    overrides: Dict[str, Any] = {
        "duration_ms": duration,
        "sample_interval_ms": min(scenario.sample_interval_ms,
                                  duration / 4),
        "check_every_ms": min(scenario.check_every_ms, duration / 4),
    }
    if scenario.snapshot_every_ms is not None:
        overrides["snapshot_every_ms"] = min(scenario.snapshot_every_ms,
                                             duration / 3)
    candidate = _try_replace(scenario, **overrides)
    return [candidate] if candidate is not None else []


def _strip_perf(scenario: SoakScenario) -> List[SoakScenario]:
    """Drop all overrides, then each one individually."""
    if not scenario.perf:
        return []
    candidates = [_try_replace(scenario, perf={})]
    for key in scenario.perf:
        remaining = {k: v for k, v in scenario.perf.items() if k != key}
        candidates.append(_try_replace(scenario, perf=remaining))
    return [c for c in candidates if c is not None]


def _drop_torture(scenario: SoakScenario) -> List[SoakScenario]:
    if scenario.torture == "none":
        return []
    candidate = _try_replace(scenario, torture="none",
                             snapshot_every_ms=None)
    return [candidate] if candidate is not None else []


#: The reduction passes, biggest hammer first.  Each returns candidate
#: scenarios strictly "smaller" than its input, so the greedy loop
#: terminates: every accepted candidate shrinks a bounded quantity.
PASSES: List[Callable[[SoakScenario], List[SoakScenario]]] = [
    _drop_each_fault,
    _drop_torture,
    _fewer_flows,
    _fewer_queues,
    _shorter,
    _strip_perf,
]


def shrink(scenario: SoakScenario, *,
           status: Optional[str] = None,
           max_attempts: int = MAX_ATTEMPTS) -> ShrinkResult:
    """Minimize ``scenario`` while its failure keeps reproducing.

    ``status`` is the failure class to preserve; by default the
    scenario is run once first to observe it.  Raises
    :class:`~repro.errors.ConfigurationError` if the scenario does not
    fail at all (nothing to minimize).
    """
    attempts = 0
    verdict = run_case(scenario)
    attempts += 1
    if status is None:
        status = verdict["status"]
    if status == "ok":
        raise ConfigurationError(
            f"soak shrink: scenario {scenario.digest} does not fail "
            "(status 'ok'); nothing to minimize")
    if verdict["status"] != status:
        raise ConfigurationError(
            f"soak shrink: scenario {scenario.digest} fails with "
            f"{verdict['status']!r}, not the requested {status!r}")

    current, current_verdict = scenario, verdict
    removed: List[str] = []
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for reduction in PASSES:
            for candidate in reduction(current):
                if attempts >= max_attempts:
                    break
                attempts += 1
                candidate_verdict = run_case(candidate)
                if candidate_verdict["status"] == status:
                    removed.append(
                        f"{reduction.__name__.lstrip('_')}: "
                        f"{current.digest} -> {candidate.digest}")
                    current, current_verdict = candidate, candidate_verdict
                    progress = True
                    break  # restart this pass from the smaller scenario
    return ShrinkResult(current, current_verdict, attempts, removed)


# -- bundles ------------------------------------------------------------------


def replay_command(path: PathLike) -> str:
    """The one-command reproduction line for a scenario file."""
    return f"python -m repro soak --replay {path}"


def write_soak_bundle(directory: PathLike, *, scenario: SoakScenario,
                      result: ShrinkResult) -> Path:
    """Write the triage bundle for one minimized failure; returns its dir."""
    base = Path(directory) / f"bundle-{scenario.digest}"
    base.mkdir(parents=True, exist_ok=True)
    scenario.write(base / "scenario.json")
    minimal_path = result.minimal.write(base / "minimal.json")
    verdict = dict(result.verdict)
    verdict["shrink_attempts"] = result.attempts
    verdict["shrink_log"] = result.removed
    (base / "verdict.json").write_text(
        json.dumps(verdict, indent=2, sort_keys=True) + "\n")
    (base / "REPLAY.txt").write_text(
        replay_command(minimal_path) + "\n")
    return base
