"""Randomized chaos-soak harness (``repro soak``).

The soak harness closes the robustness loop the targeted suites leave
open: instead of replaying one hand-written schedule
(:mod:`repro.experiments.chaos`) or one kill drill
(:mod:`repro.snapshot`), it *generates* bounded random combinations of
scheme x topology x perf switches x fault schedule x snapshot torture
(:mod:`repro.soak.scenario`), checks a central registry of always-true
world invariants while each one runs (:mod:`repro.soak.invariants`),
and — when a case fails — minimizes it to the smallest scenario that
still fails and writes a one-command replay bundle
(:mod:`repro.soak.shrink`).

:func:`run_soak` is the orchestrator: it materializes the case list up
front from the master seed (so the list is a pure function of
``(seed, iterations)``), fans the cases through
:func:`repro.experiments.parallel.parallel_map` (``jobs=1`` and
``--jobs N`` produce identical verdicts, in case order), publishes one
``soak.case`` trace event per verdict, and shrinks any failures
serially in the parent.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, NamedTuple, Optional, Union

from ..errors import ConfigurationError
from ..sim.trace import TOPIC_SOAK_CASE, TraceBus
from .invariants import DRILL_PROBLEM, InvariantEngine, InvariantViolation
from .runner import run_case
from .scenario import ScenarioGenerator, SoakScenario
from .shrink import ShrinkResult, replay_command, shrink, write_soak_bundle

PathLike = Union[str, Path]

__all__ = [
    "DRILL_PROBLEM",
    "InvariantEngine",
    "InvariantViolation",
    "ScenarioGenerator",
    "ShrinkResult",
    "SoakReport",
    "SoakScenario",
    "replay_command",
    "run_case",
    "run_soak",
    "shrink",
    "write_soak_bundle",
]

#: Verdict statuses that count as failures (everything but "ok").
FAILURE_STATUSES = ("violation", "divergence", "corruption-accepted",
                    "error")


class SoakReport(NamedTuple):
    """Everything one soak run produced."""

    seed: int
    scenarios: List[SoakScenario]     # the generated case list, in order
    verdicts: List[Dict[str, Any]]    # one verdict per case, same order
    bundles: List[str]                # triage bundle dirs (failures only)

    @property
    def failures(self) -> List[Dict[str, Any]]:
        return [v for v in self.verdicts if v["status"] != "ok"]

    @property
    def ok(self) -> bool:
        return not self.failures


def run_soak(seed: int = 1, iterations: int = 10, *, jobs: int = 1,
             retries: int = 0, checkpoint: Optional[PathLike] = None,
             resume: bool = False, trace: Optional[TraceBus] = None,
             triage_dir: Optional[PathLike] = None,
             shrink_failures: bool = True,
             drill: bool = False) -> SoakReport:
    """Generate and run ``iterations`` soak cases from ``seed``.

    ``jobs > 1`` fans cases out to crash-isolated workers with the same
    verdict list as a serial run (case order, not completion order).
    ``drill`` flips the first case's always-fail invariant on — the CI
    known-bad run proving the failure pipeline works.  Failures are
    minimized (serially, in the parent) and written as triage bundles
    under ``triage_dir`` when it is set.
    """
    if iterations < 1:
        raise ConfigurationError(
            f"soak iterations must be >= 1, got {iterations}")
    generator = ScenarioGenerator(seed)
    scenarios = generator.generate(iterations)
    if drill:
        scenarios[0] = scenarios[0].replace(drill=True)

    verdicts = _run_cases(scenarios, jobs=jobs, retries=retries,
                          checkpoint=checkpoint, resume=resume,
                          trace=trace)

    # One deterministic trace event per case: like competitive.round,
    # ``time`` is a sequence number so serial and --jobs N soak traces
    # hash identically.
    if trace is not None:
        for sequence, verdict in enumerate(verdicts, start=1):
            trace.publish(
                TOPIC_SOAK_CASE, time=sequence,
                detail=(f"case={verdict['digest']} "
                        f"scheme={verdict['scheme']} "
                        f"torture={verdict['torture']} "
                        f"status={verdict['status']}"))

    bundles: List[str] = []
    if shrink_failures and triage_dir is not None:
        for scenario, verdict in zip(scenarios, verdicts):
            if verdict["status"] == "ok":
                continue
            try:
                result = shrink(scenario, status=verdict["status"])
            except ConfigurationError:
                # A worker-death "error" that does not reproduce in the
                # parent has nothing deterministic to minimize; the
                # verdict itself is the whole story.
                continue
            bundles.append(str(write_soak_bundle(
                triage_dir, scenario=scenario, result=result)))
    return SoakReport(seed, scenarios, verdicts, bundles)


def _run_cases(scenarios: List[SoakScenario], *, jobs: int,
               retries: int, checkpoint: Optional[PathLike],
               resume: bool,
               trace: Optional[TraceBus]) -> List[Dict[str, Any]]:
    """Fan the cases through the parallel executor, verdicts in order."""
    from ..experiments.parallel import JobSpec, job_key, parallel_map

    specs = []
    for scenario in scenarios:
        params = {"scenario": scenario.to_dict()}
        specs.append(JobSpec(
            job_key("soak", params, label=scenario.digest),
            "soak", params, seed=None))
    outcomes = parallel_map(specs, jobs=jobs, retries=retries,
                            checkpoint=checkpoint, resume=resume,
                            trace=trace)
    verdicts = []
    for scenario, outcome in zip(scenarios, outcomes):
        if outcome.ok:
            verdicts.append(outcome.value)
        else:
            # run_case itself never raises for case failures; reaching
            # here means the worker died (OOM, segfault) — surface it
            # as an "error" verdict so the soak still covers the case.
            verdicts.append({
                "digest": scenario.digest, "name": scenario.name,
                "scheme": scenario.scheme, "torture": scenario.torture,
                "status": "error",
                "detail": f"worker failed: {outcome.error}",
                "checks": 0, "violations": [],
            })
    return verdicts


def write_verdicts(path: PathLike,
                   verdicts: List[Dict[str, Any]]) -> Path:
    """Write one verdict per line (JSONL), for CI artifacts."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for verdict in verdicts:
            handle.write(json.dumps(verdict, sort_keys=True) + "\n")
    return path
