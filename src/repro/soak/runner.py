"""Run one soak case and produce a JSON verdict.

:func:`run_case` is the worker-side unit of the soak harness: build the
scenario's world under its perf config, attach the
:class:`~repro.soak.invariants.InvariantEngine`, drive the run, apply
the scenario's torture mode, and reduce everything to a plain JSON
verdict dict — no live objects, no filesystem paths, no wall-clock
values — so serial and ``--jobs N`` soaks produce byte-identical case
lists and the parallel executor can checkpoint verdicts verbatim.

Verdict ``status`` values:

========================  ====================================================
status                    meaning
========================  ====================================================
``ok``                    run completed, every invariant sweep clean
``violation``             the invariant engine tripped (see ``violations``)
``divergence``            kill/restore torture: the restored run's trace or
                          op counters differ from the uninterrupted arm
``corruption-accepted``   a deliberately corrupted snapshot restored without
                          raising — silent acceptance, the worst failure
``error``                 an unhandled :class:`~repro.errors.SimulationError`
                          or watchdog abort ended the run
========================  ====================================================

Any non-``ok`` verdict is a failure the soak orchestrator hands to the
shrinker (:mod:`repro.soak.shrink`).
"""

from __future__ import annotations

import hashlib
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..errors import (
    SimulationError,
    SnapshotError,
    SnapshotHalt,
)
from ..experiments.testbed import DEFAULT_CONFIG, _prepare_bulk
from ..faults import ScenarioWatchdog
from ..perf.config import use_config
from ..sim.trace import TraceBus
from ..snapshot import (
    SimWorld,
    SnapshotPolicy,
    restore_world,
    run_world,
)
from ..telemetry import TelemetrySession
from .invariants import InvariantEngine, InvariantViolation
from .scenario import SoakScenario

#: Verdicts keep at most this many violation records (a broken
#: invariant usually trips on every sweep; the first few say it all).
MAX_VIOLATIONS = 5

#: Wall-clock ceiling per arm — a soak case is tiny, so a minute means
#: a wedged run, not a slow one.
WALL_BUDGET_S = 60.0


class _CaseAbort(Exception):
    """Internal: stop the case with a known status (never escapes)."""

    def __init__(self, status: str, detail: str) -> None:
        self.status = status
        self.detail = detail
        super().__init__(detail)


def _build_world(scenario: SoakScenario,
                 trace: Optional[TraceBus]
                 ) -> Tuple[SimWorld, InvariantEngine]:
    """Build (not run) the scenario's world with the engine armed."""
    world = _prepare_bulk(
        scenario.scheme,
        flows_per_queue=[scenario.flows_per_queue] * scenario.num_queues,
        quanta=[DEFAULT_CONFIG.quantum_bytes] * scenario.num_queues,
        stop_times_ns=None, duration_ns=scenario.duration_ns,
        sample_interval_ns=scenario.sample_interval_ns,
        config=DEFAULT_CONFIG, trace=trace,
        faults=scenario.fault_schedule())
    engine = InvariantEngine(world,
                             check_every_ns=scenario.check_every_ns,
                             drill=scenario.drill)
    engine.arm()
    # The engine rides in world.state so snapshots carry it: a restored
    # torture run keeps checking the same invariants mid-flight.
    world.state["invariants"] = engine
    watchdog = ScenarioWatchdog(world.net.sim, wall_budget_s=WALL_BUDGET_S)
    watchdog.start()
    world.watchdog = watchdog
    return world, engine


def _finish_arm(world: SimWorld) -> Tuple[int, int, int, int]:
    """Close out one completed arm; returns its op-counter fingerprint."""
    sim = world.net.sim
    if world.watchdog is not None:
        if world.watchdog.tripped:
            raise _CaseAbort("error",
                             f"watchdog: {world.watchdog.tripped}")
        world.watchdog.cancel()
    world.finish(world)
    return (sim.now, sim.events_scheduled, sim.events_executed,
            sim.events_cancelled)


def _sha256(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


# -- the three torture modes --------------------------------------------------


def _run_plain(scenario: SoakScenario, tmp: Path,
               engines: List[InvariantEngine]) -> None:
    """torture "none": one traced run under the invariant engine."""
    policy = None
    if scenario.snapshot_every_ns is not None:
        policy = SnapshotPolicy(every_ns=scenario.snapshot_every_ns,
                                out=tmp / "plain.snap")
    session = TelemetrySession(trace_out=tmp / "plain.jsonl")
    with session:
        world, engine = _build_world(scenario, session.trace)
        engines.append(engine)
        run_world(world, policy)
        _finish_arm(world)


def _run_kill_restore(scenario: SoakScenario, tmp: Path,
                      engines: List[InvariantEngine]) -> None:
    """Crash-consistency torture: kill at an autosave, restore, diff.

    Arm A runs uninterrupted; arm B is killed by the drill right after
    its first autosave and restored from it.  Both arms use the same
    autosave cadence (each tick consumes one event sequence number), so
    the stitched arm-B trace and op counters must be *byte-identical*
    to arm A's — any difference is restore divergence.
    """
    every_ns = scenario.snapshot_every_ns
    trace_a = tmp / "a.jsonl"
    session = TelemetrySession(trace_out=trace_a)
    with session:
        world_a, engine_a = _build_world(scenario, session.trace)
        engines.append(engine_a)
        run_world(world_a, SnapshotPolicy(every_ns=every_ns,
                                          out=tmp / "a.snap"))
        counters_a = _finish_arm(world_a)

    trace_b = tmp / "b.jsonl"
    snap_b = tmp / "b.snap"
    policy_b = SnapshotPolicy(every_ns=every_ns, out=snap_b,
                              halt_after_saves=1)
    halted = False
    session = TelemetrySession(trace_out=trace_b)
    with session:
        world_b, engine_b = _build_world(scenario, session.trace)
        engines.append(engine_b)
        try:
            run_world(world_b, policy_b)
        except SnapshotHalt:
            halted = True
    if not halted:
        raise _CaseAbort(
            "error", "kill drill never fired (autosave cadence past "
            "the horizon?)")

    world_r = restore_world(snap_b, expect_kind="bulk")
    engines.append(world_r.state["invariants"])
    # Same policy: the drill counter rode inside the snapshot, so the
    # restored run keeps autosaving but never re-trips the halt.
    run_world(world_r, policy_b)
    counters_r = _finish_arm(world_r)
    world_r.close_recorders()

    if counters_r != counters_a:
        raise _CaseAbort(
            "divergence",
            f"op counters diverge after restore: "
            f"uninterrupted={counters_a} restored={counters_r}")
    hash_a, hash_b = _sha256(trace_a), _sha256(trace_b)
    if hash_a != hash_b:
        raise _CaseAbort(
            "divergence",
            f"trace diverges after restore: uninterrupted "
            f"sha256={hash_a[:16]} restored sha256={hash_b[:16]}")


#: Corruption styles applied to a snapshot file by the torture mode.
#: Each takes the original bytes and the payload start offset.
def _truncate(blob: bytes, payload_at: int) -> bytes:
    return blob[:payload_at + max(1, (len(blob) - payload_at) // 2)]


def _bitflip(blob: bytes, payload_at: int) -> bytes:
    out = bytearray(blob)
    out[payload_at + (len(blob) - payload_at) // 2] ^= 0x40
    return bytes(out)


def _torn_tail(blob: bytes, payload_at: int) -> bytes:
    return blob[:-7] + b"\x00" * 7


def _garbage_header(blob: bytes, payload_at: int) -> bytes:
    return b"not a snapshot header\n" + blob[payload_at:]


CORRUPTIONS = (("truncated", _truncate), ("bitflip", _bitflip),
               ("torn-tail", _torn_tail),
               ("garbage-header", _garbage_header))


def _run_corrupt_snapshot(scenario: SoakScenario, tmp: Path,
                          engines: List[InvariantEngine]) -> None:
    """Snapshot-corruption torture: damaged files must be *detected*.

    Runs to the first autosave, halts, then corrupts copies of the
    snapshot four different ways; every corrupted copy must be refused
    with a :class:`~repro.errors.SnapshotError` — a copy that restores
    silently is the failure this mode exists to catch.  The pristine
    snapshot is then restored and driven to the horizon under the
    invariant engine, proving the good file still works.
    """
    snap = tmp / "torture.snap"
    policy = SnapshotPolicy(every_ns=scenario.snapshot_every_ns,
                            out=snap, halt_after_saves=1)
    world, engine = _build_world(scenario, None)
    engines.append(engine)
    try:
        run_world(world, policy)
    except SnapshotHalt:
        pass
    else:
        raise _CaseAbort(
            "error", "kill drill never fired (autosave cadence past "
            "the horizon?)")

    blob = snap.read_bytes()
    payload_at = blob.index(b"\n") + 1
    accepted = []
    for label, corrupt in CORRUPTIONS:
        variant = tmp / f"corrupt-{label}.snap"
        variant.write_bytes(corrupt(blob, payload_at))
        try:
            restore_world(variant, expect_kind="bulk")
        except SnapshotError:
            continue  # detected, as required
        accepted.append(label)
    if accepted:
        raise _CaseAbort(
            "corruption-accepted",
            f"corrupted snapshot(s) restored without error: {accepted}")

    world_r = restore_world(snap, expect_kind="bulk")
    engines.append(world_r.state["invariants"])
    run_world(world_r, policy)
    _finish_arm(world_r)
    world_r.close_recorders()


# -- the entry point ----------------------------------------------------------


def run_case(scenario: SoakScenario) -> Dict[str, Any]:
    """Run one scenario end to end; always returns a verdict dict."""
    engines: List[InvariantEngine] = []
    status, detail = "ok", ""
    try:
        with use_config(scenario.perf_config()):
            with tempfile.TemporaryDirectory(prefix="repro-soak-") as raw:
                tmp = Path(raw)
                if scenario.torture == "kill-restore":
                    _run_kill_restore(scenario, tmp, engines)
                elif scenario.torture == "corrupt-snapshot":
                    _run_corrupt_snapshot(scenario, tmp, engines)
                else:
                    _run_plain(scenario, tmp, engines)
    except InvariantViolation as exc:
        status, detail = "violation", str(exc)
    except _CaseAbort as exc:
        status, detail = exc.status, exc.detail
    except SnapshotError as exc:
        status, detail = "error", f"{type(exc).__name__}: {exc}"
    except SimulationError as exc:
        status, detail = "error", f"{type(exc).__name__}: {exc}"
    finally:
        for engine in engines:
            engine.close()

    checks = sum(engine.checks for engine in engines)
    violations: List[Dict[str, Any]] = []
    for engine in engines:
        violations.extend(engine.violations)
    if violations and status == "ok":
        # Belt and braces: a non-raising engine (replay mode) records
        # violations without aborting the run.
        status = "violation"
        detail = detail or str(violations[0]["problems"][0])
    return {
        "digest": scenario.digest,
        "name": scenario.name,
        "scheme": scenario.scheme,
        "torture": scenario.torture,
        "status": status,
        "detail": detail,
        "checks": checks,
        "violations": violations[:MAX_VIOLATIONS],
    }
