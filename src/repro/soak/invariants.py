"""The soak harness's central invariant engine.

:class:`InvariantEngine` attaches to a built
:class:`~repro.snapshot.SimWorld` and checks a registry of cheap,
always-true world invariants:

* **packet conservation** — per port,
  ``enqueued == transmitted + buffered + evicted + dequeue_drops``
  (:meth:`repro.net.port.EgressPort.audit_conservation`), together with
  the per-queue byte accounting and the shared-buffer bound
  ``total <= B``;
* **per-queue FIFO order** — buffered packets' enqueue stamps are
  non-decreasing front to back (same audit);
* **threshold closure** — ``sum(T_i) == B`` for every DynaQ-family
  manager (:meth:`repro.core.dynaq.DynaQBuffer.audit_thresholds`), the
  paper's §III-B equality, re-checked here at every fault boundary on
  top of the event-driven
  :class:`~repro.faults.ThresholdInvariantMonitor`;
* **clock monotonicity and counter sanity** — the simulated clock never
  moves backwards between checks, the live-event count stays
  non-negative, and the event free-list stays bounded
  (:meth:`repro.sim.engine.Simulator.audit_counters`).

Checks run on a fixed simulated-time cadence (an ordinary scheduled
event — a named bound method, so snapshots of a soak world pickle
cleanly) and additionally at every fault boundary, where the most state
transitions at once.  The engine is *entirely external* to the
datapath: nothing in ports, DynaQ, or the engine consults it, so a run
without an engine attached is byte-identical to one before this module
existed — the golden-trace hashes in ``tests/test_perf_equivalence.py``
are the proof.

A failed check raises :class:`InvariantViolation` (a
:class:`~repro.errors.SimulationError`, so watchdog/triage plumbing
treats it like any other fatal run error) out of the event loop; the
soak runner catches it and turns it into a case verdict.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import SimulationError
from ..sim.trace import TOPIC_FAULT_INJECT, TOPIC_FAULT_RECOVER

#: Problem string injected by drill mode (CI's known-bad case).
DRILL_PROBLEM = "drill: deliberately injected invariant failure"


class InvariantViolation(SimulationError):
    """An always-true world invariant did not hold.

    Carries the structured problem list so triage bundles and shrink
    verdicts can report *which* invariant tripped, not just that one
    did.
    """

    def __init__(self, time_ns: int, problems: List[str]) -> None:
        self.time_ns = time_ns
        self.problems = list(problems)
        preview = "; ".join(self.problems[:3])
        more = len(self.problems) - 3
        if more > 0:
            preview += f" (+{more} more)"
        super().__init__(f"invariant violation at t={time_ns}: {preview}")


class InvariantEngine:
    """Cadence- and fault-boundary-driven world invariant checker.

    Parameters
    ----------
    world:
        The built (not yet run) :class:`~repro.snapshot.SimWorld`.
    check_every_ns:
        Simulated-time cadence between full sweeps.
    drill:
        Inject :data:`DRILL_PROBLEM` into every sweep — the known-bad
        scenario CI uses to prove the violation → shrink → bundle
        pipeline end to end.
    raise_on_violation:
        When False the engine only records violations (the replay path
        uses this to finish a failing run and report everything found).
    """

    def __init__(self, world: Any, *, check_every_ns: int,
                 drill: bool = False,
                 raise_on_violation: bool = True) -> None:
        if check_every_ns <= 0:
            raise ValueError(
                f"check cadence must be positive, got {check_every_ns}")
        self.world = world
        self.check_every_ns = check_every_ns
        self.drill = drill
        self.raise_on_violation = raise_on_violation
        self.checks = 0
        self.violations: List[Dict[str, Any]] = []
        self._last_now: Optional[int] = None
        self._armed = False
        self._subscriptions = []

    # -- wiring ----------------------------------------------------------------

    def arm(self) -> None:
        """Schedule the first sweep and hook the fault boundaries."""
        if self._armed:
            return
        self._armed = True
        sim = self.world.net.sim
        sim.schedule(self.check_every_ns, self._on_check)
        trace = self.world.net.trace
        for topic in (TOPIC_FAULT_INJECT, TOPIC_FAULT_RECOVER):
            handler = self._on_fault
            trace.subscribe(topic, handler)
            self._subscriptions.append((topic, handler))

    def close(self) -> None:
        """Detach the fault-boundary hooks (the cadence event expires)."""
        trace = self.world.net.trace
        for topic, handler in self._subscriptions:
            trace.unsubscribe(topic, handler)
        self._subscriptions = []

    # -- event callbacks (named bound methods: snapshot-safe) ------------------

    def _on_check(self) -> None:
        sim = self.world.net.sim
        if sim.now < self.world.horizon_ns:
            sim.schedule(self.check_every_ns, self._on_check)
        self.run_checks(boundary="cadence")

    def _on_fault(self, **payload: Any) -> None:
        self.run_checks(
            boundary=f"fault:{payload.get('detail', '?')}")

    # -- the registry ----------------------------------------------------------

    def run_checks(self, boundary: str = "manual") -> List[str]:
        """One full sweep; returns (and records) the problems found."""
        self.checks += 1
        sim = self.world.net.sim
        problems: List[str] = []
        if self._last_now is not None and sim.now < self._last_now:
            problems.append(
                f"clock moved backwards: {self._last_now} -> {sim.now}")
        self._last_now = sim.now
        problems.extend(sim.audit_counters())
        for port in self.world.iter_ports():
            audit = getattr(port, "audit_conservation", None)
            if audit is None:
                continue
            for problem in audit():
                problems.append(f"port {port.name}: {problem}")
            manager = getattr(port, "buffer_manager", None)
            check = getattr(manager, "audit_thresholds", None)
            if callable(check):
                failure = check()
                if failure is not None:
                    problems.append(f"port {port.name}: {failure}")
        if self.drill:
            problems.append(DRILL_PROBLEM)
        if problems:
            self.violations.append({
                "time_ns": sim.now, "boundary": boundary,
                "problems": list(problems),
            })
            if self.raise_on_violation:
                raise InvariantViolation(sim.now, problems)
        return problems

    @property
    def violation_count(self) -> int:
        return len(self.violations)
