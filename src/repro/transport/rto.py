"""Retransmission-timeout estimation (RFC 6298).

The paper tunes ``RTO_min`` carefully — 10 ms on the testbed (following
DCTCP/PIAS practice) and 5 ms in the ns-2 simulations ("the lowest stable
value in jiffy timer") — because drop-based schemes recover small-flow
losses via timeout.  The estimator keeps SRTT/RTTVAR per connection and
applies Karn's rule upstream (retransmitted segments produce no samples).
"""

from __future__ import annotations

from typing import Optional

from ..sim.units import MILLISECOND, SECOND

DEFAULT_MIN_RTO_NS = 10 * MILLISECOND
DEFAULT_MAX_RTO_NS = 4 * SECOND
CLOCK_GRANULARITY_NS = MILLISECOND
ALPHA = 1 / 8   # SRTT gain
BETA = 1 / 4    # RTTVAR gain


class RTOEstimator:
    """SRTT / RTTVAR / RTO state machine for one connection."""

    def __init__(self, min_rto_ns: int = DEFAULT_MIN_RTO_NS,
                 max_rto_ns: int = DEFAULT_MAX_RTO_NS) -> None:
        if min_rto_ns <= 0 or max_rto_ns < min_rto_ns:
            raise ValueError(
                f"bad RTO bounds: min={min_rto_ns}, max={max_rto_ns}")
        self.min_rto_ns = min_rto_ns
        self.max_rto_ns = max_rto_ns
        self.srtt_ns: Optional[float] = None
        self.rttvar_ns: float = 0.0
        self._rto_ns: int = min_rto_ns * 3  # conservative pre-sample value
        self._backoff = 0

    def add_sample(self, rtt_ns: int) -> None:
        """Fold one RTT measurement into the estimate (resets backoff)."""
        if rtt_ns < 0:
            raise ValueError(f"negative RTT sample: {rtt_ns}")
        if self.srtt_ns is None:
            self.srtt_ns = float(rtt_ns)
            self.rttvar_ns = rtt_ns / 2
        else:
            self.rttvar_ns += BETA * (abs(self.srtt_ns - rtt_ns)
                                      - self.rttvar_ns)
            self.srtt_ns += ALPHA * (rtt_ns - self.srtt_ns)
        base = self.srtt_ns + max(4 * self.rttvar_ns, CLOCK_GRANULARITY_NS)
        self._rto_ns = int(base)
        self._backoff = 0

    def on_timeout(self) -> None:
        """Exponential backoff after an expiry."""
        self._backoff += 1

    @property
    def rto_ns(self) -> int:
        """Current RTO with min/max clamping and backoff applied."""
        value = self._rto_ns << self._backoff
        return max(self.min_rto_ns, min(value, self.max_rto_ns))
