"""Classic ECN-enabled TCP (RFC 3168 semantics on the Reno base).

DCTCP reacts to the *fraction* of marked bytes; classic ECN-TCP treats
any ECN echo in a window exactly like a packet loss — one multiplicative
decrease per round trip, with no retransmission.  The paper's ECN-based
comparators all use DCTCP, but classic ECN-TCP rounds out the transport
matrix for protocol-independence experiments (DynaQ must coexist with it
like with any other generic transport) and for the coarse-vs-fine
congestion-signal comparison MQ-ECN's authors motivate.
"""

from __future__ import annotations

from ..net.packet import Packet
from .base import Flow
from .tcp import TCPSender


class ECNTCPSender(TCPSender):
    """Reno with RFC 3168 ECN reaction (halve once per window on ECE)."""

    protocol = "ecn-tcp"

    def __init__(self, sim, host, flow: Flow, **kwargs) -> None:
        flow.ecn = True
        super().__init__(sim, host, flow, **kwargs)
        self._cwr_until = 0  # ignore further echoes below this seq
        self.ecn_reductions = 0

    def _on_ecn_echo(self, packet: Packet) -> None:
        # One reduction per window of data (congestion-window-reduced
        # state): echoes for bytes below the recorded boundary are the
        # same congestion event.
        if packet.ack_seq < self._cwr_until:
            return
        self.ssthresh = max(self.cwnd / 2, float(2 * self.mss))
        self.cwnd = self.ssthresh
        self._cwr_until = self.next_seq
        self.ecn_reductions += 1
