"""CUBIC sender model (RFC 8312 shape).

CUBIC grows the window as a cubic function of *wall-clock time* since the
last loss instead of per-ACK AIMD, which makes it markedly more aggressive
than Reno on long-RTT or large-BDP paths.  In the paper it plays the role
of "a different generic transport protocol" in the protocol-mix experiment
(Fig. 7): queues 3-4 run CUBIC against queues 1-2 running TCP, and DynaQ
must keep the shares fair anyway.

The implementation follows the standard structure: on a loss event record
``W_max``, shrink by ``beta = 0.7``, and afterwards chase the target

    W_cubic(t) = C * (t - K)^3 + W_max,   K = cbrt(W_max * (1 - beta) / C)

with windows measured in segments and ``C = 0.4 segments/s^3``.  A
TCP-friendly floor (the Reno-equivalent window estimate) keeps CUBIC from
underperforming Reno at small windows.
"""

from __future__ import annotations

from typing import Optional

from .tcp import TCPSender

CUBIC_C = 0.4     # segments per second cubed
CUBIC_BETA = 0.7  # multiplicative decrease factor


class CubicSender(TCPSender):
    """CUBIC congestion control on top of the TCP sender machinery."""

    protocol = "cubic"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.w_max_segments = 0.0
        self._epoch_start: Optional[int] = None
        self._k_seconds = 0.0
        self._epoch_cwnd_segments = 0.0

    # -- congestion control hooks -------------------------------------------------

    def _on_loss_event(self) -> None:
        cwnd_segments = self.cwnd / self.mss
        self.w_max_segments = cwnd_segments
        self.ssthresh = max(self.cwnd * CUBIC_BETA, float(2 * self.mss))
        self._epoch_start = None

    def _on_rto(self) -> None:
        # A timeout also ends the cubic epoch.
        self._epoch_start = None
        self.w_max_segments = self.cwnd / self.mss
        super()._on_rto()

    def _on_new_ack_cc(self, newly_acked: int) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += newly_acked
            return
        now = self.sim.now
        if self._epoch_start is None:
            self._epoch_start = now
            self._epoch_cwnd_segments = self.cwnd / self.mss
            origin = max(self.w_max_segments, self._epoch_cwnd_segments)
            self._k_seconds = ((origin - self._epoch_cwnd_segments)
                               / CUBIC_C) ** (1 / 3) if origin > 0 else 0.0
        elapsed = (now - self._epoch_start) / 1e9
        origin = max(self.w_max_segments, self._epoch_cwnd_segments)
        target = (CUBIC_C * (elapsed - self._k_seconds) ** 3 + origin)
        cwnd_segments = self.cwnd / self.mss
        # TCP-friendly region: never slower than Reno's AIMD estimate.
        rtt_seconds = ((self.rto.srtt_ns or 1e6) / 1e9)
        friendly = (self.w_max_segments * CUBIC_BETA
                    + 3 * (1 - CUBIC_BETA) / (1 + CUBIC_BETA)
                    * elapsed / max(rtt_seconds, 1e-9))
        target = max(target, friendly)
        if target > cwnd_segments:
            # Spread the climb to the target over roughly one RTT of ACKs.
            self.cwnd += ((target - cwnd_segments) / cwnd_segments) * self.mss
        else:
            # Deep in the concave plateau: probe very gently.
            self.cwnd += 0.01 * self.mss
