"""Delay-based congestion control (Vegas-style, standing in for DX/TIMELY).

The paper's protocol-independence argument (§II-B) leans on the rise of
*non-ECN* congestion signals — network delay in particular (DX, TIMELY).
Like the authors ("we have tried to use emerging protocols, but it is
hard to obtain their codes"), we cannot run the original stacks; this
module provides the closest well-understood window-based model: TCP
Vegas.  Vegas estimates the backlog it keeps in the network,

    diff = cwnd/base_rtt - cwnd/rtt        [packets of standing queue]

and steers it into the band ``[alpha, beta]`` — increasing the window
when the queue estimate is below ``alpha`` packets, decreasing above
``beta``.  It never needs drops or marks on the steady path, which makes
it the sharpest possible test of a buffer-management scheme's protocol
independence: DynaQ must share fairly even when one queue's senders keep
near-empty queues by design (see ``benchmarks/test_protocol_zoo.py``).
"""

from __future__ import annotations

from typing import Optional

from ..net.packet import Packet
from .base import Flow
from .tcp import TCPSender

VEGAS_ALPHA = 2.0   # lower backlog target, packets
VEGAS_BETA = 4.0    # upper backlog target, packets


class VegasSender(TCPSender):
    """Delay-based window adjustment on the TCP sender machinery."""

    protocol = "vegas"

    def __init__(self, sim, host, flow: Flow, **kwargs) -> None:
        super().__init__(sim, host, flow, **kwargs)
        self.base_rtt_ns: Optional[int] = None
        self._last_adjust_seq = 0

    def on_ack(self, packet: Packet) -> None:
        if packet.ts_echo is not None:
            sample = self.sim.now - packet.ts_echo
            if self.base_rtt_ns is None or sample < self.base_rtt_ns:
                self.base_rtt_ns = sample
        super().on_ack(packet)

    def _on_new_ack_cc(self, newly_acked: int) -> None:
        rtt = self.rto.srtt_ns
        if rtt is None or self.base_rtt_ns is None or rtt <= 0:
            # No delay estimate yet: behave like slow start.
            self.cwnd += newly_acked
            return
        # Adjust once per RTT's worth of acknowledged data.
        if self.high_ack < self._last_adjust_seq:
            return
        self._last_adjust_seq = self.high_ack + int(self.cwnd)
        cwnd_packets = self.cwnd / self.mss
        expected = cwnd_packets / (self.base_rtt_ns / 1e9)
        actual = cwnd_packets / (rtt / 1e9)
        backlog = (expected - actual) * (self.base_rtt_ns / 1e9)
        if backlog < VEGAS_ALPHA:
            self.cwnd += self.mss
        elif backlog > VEGAS_BETA:
            self.cwnd = max(self.cwnd - self.mss, float(2 * self.mss))
        # Inside the band: hold.

    def _on_loss_event(self) -> None:
        # Vegas still halves on actual loss (it is a TCP after all).
        super()._on_loss_event()
