"""End-host transports: TCP (NewReno), CUBIC, DCTCP, RTO, PIAS tagging."""

from .base import Flow, FlowReceiver, TransportSender, segment_sizes, wire_size
from .cubic import CubicSender
from .dctcp import DCTCPSender
from .ecn_tcp import ECNTCPSender
from .pias import DEFAULT_DEMOTION_THRESHOLD, PIASConfig
from .registry import available_protocols, sender_class
from .rto import DEFAULT_MIN_RTO_NS, RTOEstimator
from .tcp import TCPSender
from .vegas import VegasSender

__all__ = [
    "Flow",
    "FlowReceiver",
    "TransportSender",
    "segment_sizes",
    "wire_size",
    "CubicSender",
    "DCTCPSender",
    "ECNTCPSender",
    "DEFAULT_DEMOTION_THRESHOLD",
    "PIASConfig",
    "available_protocols",
    "sender_class",
    "DEFAULT_MIN_RTO_NS",
    "RTOEstimator",
    "TCPSender",
    "VegasSender",
]
