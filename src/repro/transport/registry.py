"""Protocol registry: name -> sender class.

Experiments select transports by name ("tcp", "cubic", "dctcp") so that
scenario descriptions stay declarative — e.g. the protocol-mix experiment
assigns ``{1: "tcp", 2: "tcp", 3: "cubic", 4: "cubic"}`` per queue.
"""

from __future__ import annotations

from typing import Dict, Type

from .cubic import CubicSender
from .dctcp import DCTCPSender
from .ecn_tcp import ECNTCPSender
from .vegas import VegasSender
from .tcp import TCPSender

_PROTOCOLS: Dict[str, Type[TCPSender]] = {
    "tcp": TCPSender,
    "cubic": CubicSender,
    "dctcp": DCTCPSender,
    "ecn-tcp": ECNTCPSender,
    "vegas": VegasSender,
}


def sender_class(protocol: str) -> Type[TCPSender]:
    """Look up a sender class by protocol name (case-insensitive)."""
    key = protocol.lower()
    if key not in _PROTOCOLS:
        raise KeyError(
            f"unknown transport {protocol!r}; known: {sorted(_PROTOCOLS)}")
    return _PROTOCOLS[key]


def available_protocols() -> list:
    """Names of every registered transport."""
    return sorted(_PROTOCOLS)
