"""PIAS two-level flow classification (Bai et al., NSDI'15).

PIAS approximates shortest-job-first without flow-size knowledge by
demoting a flow through priority queues as it sends more bytes.  The paper
uses the two-level variant: the first ``demotion_threshold`` bytes
(100 KB) of every flow ride the shared high-priority SPQ queue (class 0);
everything after is demoted to the flow's dedicated service queue.

The tagging itself happens per packet inside
:meth:`repro.transport.base.Flow.class_for_offset`; this module provides
the configuration object and helpers the experiment harness uses.
"""

from __future__ import annotations

from ..sim.units import kilobytes

# The paper's demotion threshold for both testbed and simulations.
DEFAULT_DEMOTION_THRESHOLD = kilobytes(100)


class PIASConfig:
    """Two-level PIAS settings applied to generated flows."""

    def __init__(self,
                 demotion_threshold: int = DEFAULT_DEMOTION_THRESHOLD,
                 high_priority_class: int = 0) -> None:
        if demotion_threshold <= 0:
            raise ValueError("demotion threshold must be positive")
        if high_priority_class != 0:
            raise ValueError(
                "the shared SPQ queue is class 0 in this implementation")
        self.demotion_threshold = demotion_threshold
        self.high_priority_class = high_priority_class

    def classify_offset(self, offset: int, service_class: int) -> int:
        """Service class for a payload byte at ``offset`` of a flow."""
        if offset < self.demotion_threshold:
            return self.high_priority_class
        return service_class

    def is_small_flow(self, size: int) -> bool:
        """True if the whole flow fits in the high-priority stage."""
        return size <= self.demotion_threshold
