"""DCTCP sender model (Alizadeh et al., SIGCOMM'10).

DCTCP is the ECN-based transport the paper pairs with TCN, MQ-ECN, PMSB,
and Per-Queue ECN in the Fig. 9 comparison.  The sender keeps an EWMA
``alpha`` of the fraction of CE-marked bytes per window,

    alpha <- (1 - g) * alpha + g * F,      g = 1/16,

and on a window containing marks shrinks ``cwnd`` by ``alpha / 2`` —
proportional to the *extent* of congestion rather than the fixed halving
of Reno.  Loss handling (fast retransmit, RTO) is inherited unchanged.

All DCTCP data packets are ECN-capable; the per-packet-ACK receiver model
echoes CE marks exactly (the real protocol's delayed-ACK state machine
exists to approximate this, so the model is faithful).
"""

from __future__ import annotations

from ..net.packet import Packet
from .base import Flow
from .tcp import TCPSender

DCTCP_G = 1 / 16


class DCTCPSender(TCPSender):
    """DCTCP congestion control on top of the TCP sender machinery."""

    protocol = "dctcp"

    def __init__(self, sim, host, flow: Flow, **kwargs) -> None:
        flow.ecn = True  # DCTCP is ECN-capable by definition
        super().__init__(sim, host, flow, **kwargs)
        self.alpha = 1.0           # conservative start, as in the paper's code
        self._window_end = 0       # high_ack value ending the current window
        self._acked_in_window = 0
        self._marked_in_window = 0
        self._pending_mark = False

    def _on_ecn_echo(self, packet: Packet) -> None:
        # Attribute the echo to the bytes this ACK covers; counted in
        # _on_new_ack_cc via the flag below.
        self._pending_mark = True

    def _on_new_ack_cc(self, newly_acked: int) -> None:
        self._acked_in_window += newly_acked
        if self._pending_mark:
            self._marked_in_window += newly_acked
            self._pending_mark = False
        if self.high_ack >= self._window_end:
            self._end_window()
        # Growth is standard TCP (slow start / AIMD).
        super()._on_new_ack_cc(newly_acked)

    def _end_window(self) -> None:
        if self._acked_in_window > 0:
            fraction = self._marked_in_window / self._acked_in_window
            self.alpha += DCTCP_G * (fraction - self.alpha)
            if self._marked_in_window > 0:
                self.cwnd = max(self.cwnd * (1 - self.alpha / 2),
                                float(self.mss))
                self.ssthresh = self.cwnd
        self._acked_in_window = 0
        self._marked_in_window = 0
        self._window_end = self.next_seq
