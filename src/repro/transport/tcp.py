"""TCP Reno/NewReno sender model.

Window-based, per-segment packets, per-packet cumulative ACKs.  Features
reproduced because the paper's experiments depend on them:

* slow start / congestion avoidance with a configurable initial window
  (10 segments, RFC 6928, per the paper's testbed setup);
* fast retransmit on three duplicate ACKs + NewReno fast recovery with
  partial-ACK retransmissions (drop-based schemes live and die by this);
* RTO with a configurable minimum (10 ms testbed / 5 ms simulations) and
  go-back-N recovery after an expiry;
* per-packet service-class tagging through the flow's PIAS rule.

Subclasses override the three hooks ``_on_new_ack_cc`` (additive growth),
``_on_loss_event`` (multiplicative decrease bookkeeping), and
``_on_ecn_echo`` to become CUBIC or DCTCP.
"""

from __future__ import annotations

from ..net.packet import MTU_BYTES, HEADER_BYTES, Packet
from ..sim.errors import TransportError
from .base import Flow, TransportSender, wire_size
from .rto import DEFAULT_MIN_RTO_NS, RTOEstimator

INITIAL_WINDOW_SEGMENTS = 10
DUPACK_THRESHOLD = 3


class TCPSender(TransportSender):
    """NewReno-style TCP sender for one flow."""

    protocol = "tcp"

    def __init__(self, sim, host, flow: Flow, *,
                 mtu_bytes: int = MTU_BYTES,
                 min_rto_ns: int = DEFAULT_MIN_RTO_NS,
                 on_complete=None) -> None:
        super().__init__(sim, host, flow)
        self.mss = mtu_bytes - HEADER_BYTES
        if self.mss <= 0:
            raise TransportError(f"MTU {mtu_bytes} leaves no payload room")
        self.cwnd = float(INITIAL_WINDOW_SEGMENTS * self.mss)
        self.ssthresh = float(1 << 62)
        self.high_ack = 0          # cumulative bytes acknowledged
        self.next_seq = 0          # next new byte to transmit
        self.dup_acks = 0
        self.in_recovery = False
        self.recover_seq = 0       # NewReno recovery point
        self.rto = RTOEstimator(min_rto_ns=min_rto_ns)
        self._rto_event = None
        self._on_complete = on_complete
        # Statistics.
        self.packets_sent = 0
        self.retransmissions = 0
        self.timeouts = 0
        self.ecn_echoes = 0

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        if self.started_at is not None:
            raise TransportError(
                f"flow {self.flow.flow_id} started twice")
        self.started_at = self.sim.now
        self._fill_window()

    def abort(self) -> None:
        """Stop the flow now (models "the sender stops traffic at t").

        Used by the static-flow experiments, where iperf senders are
        killed on a schedule.  The flow is marked complete so timers die
        and late ACKs are ignored; no completion callback fires.
        """
        if self.complete:
            return
        self.completed_at = self.sim.now
        if self._rto_event is not None:
            self.sim.cancel(self._rto_event)
            self._rto_event = None

    def on_host_down(self) -> None:
        """Host crash: silence the retransmission timer.

        The host drops all packets while down, so no ACK can arrive and
        no state changes until :meth:`restart_after_crash`.
        """
        if self._rto_event is not None:
            self.sim.cancel(self._rto_event)
            self._rto_event = None

    def restart_after_crash(self) -> None:
        """Host restart: RFC 5681 §4.1 restart-after-idle semantics.

        Congestion state is reset to a one-segment window (the crash lost
        it), recovery bookkeeping is cleared, and transmission resumes
        go-back-N from the last cumulative ACK under a freshly armed RTO
        timer.  The RTT estimate survives (it is history, not state the
        crash invalidated); accumulated RTO backoff is kept until the
        first post-restart sample resets it.
        """
        if self.complete or self.started_at is None:
            return
        self.ssthresh = max(self._bytes_in_flight() / 2,
                            float(2 * self.mss))
        self.cwnd = float(self.mss)
        self.in_recovery = False
        self.dup_acks = 0
        self.next_seq = self.high_ack
        self._fill_window()
        self._arm_rto()

    # -- sending -----------------------------------------------------------------

    def _bytes_in_flight(self) -> int:
        return self.next_seq - self.high_ack

    def _fill_window(self) -> None:
        while (self.next_seq < self.flow.size
               and self._bytes_in_flight() + self.mss <= self.cwnd):
            end = min(self.next_seq + self.mss, self.flow.size)
            self._transmit(self.next_seq, end, retransmit=False)
            self.next_seq = end

    def _transmit(self, seq: int, end: int, retransmit: bool) -> None:
        packet = Packet(
            flow_id=self.flow.flow_id, src=self.host.name,
            dst=self.flow.dst, size=wire_size(end - seq), seq=seq,
            end_seq=end, service_class=self.flow.class_for_offset(seq),
            ecn_capable=self.flow.ecn, created_at=self.sim.now)
        packet.retransmitted = retransmit
        self.packets_sent += 1
        if retransmit:
            self.retransmissions += 1
        self._arm_rto()
        self.host.send_packet(packet)

    # -- receiving ----------------------------------------------------------------

    def on_ack(self, packet: Packet) -> None:
        if self.complete:
            return
        if packet.ts_echo is not None:
            self.rto.add_sample(self.sim.now - packet.ts_echo)
        if packet.ece:
            self.ecn_echoes += 1
            self._on_ecn_echo(packet)
        if packet.ack_seq > self.high_ack:
            self._handle_new_ack(packet.ack_seq)
        elif packet.ack_seq == self.high_ack and self.next_seq > self.high_ack:
            self._handle_dup_ack()

    def _handle_new_ack(self, ack_seq: int) -> None:
        newly_acked = ack_seq - self.high_ack
        self.high_ack = ack_seq
        self.dup_acks = 0
        if self.in_recovery:
            if ack_seq >= self.recover_seq:
                # Full ACK: recovery ends, deflate to ssthresh.
                self.in_recovery = False
                self.cwnd = max(self.ssthresh, float(self.mss))
            else:
                # Partial ACK: retransmit the next hole, partial deflation.
                end = min(self.high_ack + self.mss, self.flow.size)
                self._transmit(self.high_ack, end, retransmit=True)
                self.cwnd = max(self.cwnd - newly_acked + self.mss,
                                float(self.mss))
        else:
            self._on_new_ack_cc(newly_acked)
        if self.high_ack >= self.flow.size:
            self._finish()
            return
        self._arm_rto(restart=True)
        self._fill_window()

    def _handle_dup_ack(self) -> None:
        self.dup_acks += 1
        if self.in_recovery:
            # Window inflation keeps the pipe full during recovery.
            self.cwnd += self.mss
            self._fill_window()
        elif self.dup_acks >= DUPACK_THRESHOLD:
            self._enter_fast_recovery()

    # -- congestion control hooks ------------------------------------------------------

    def _on_new_ack_cc(self, newly_acked: int) -> None:
        """Reno: slow start below ssthresh, AIMD above."""
        if self.cwnd < self.ssthresh:
            self.cwnd += newly_acked
        else:
            self.cwnd += self.mss * self.mss / self.cwnd

    def _on_loss_event(self) -> None:
        """Multiplicative decrease bookkeeping on fast retransmit."""
        self.ssthresh = max(self._bytes_in_flight() / 2,
                            float(2 * self.mss))

    def _on_ecn_echo(self, packet: Packet) -> None:
        """Reaction to an ECN echo; plain TCP ignores it (not ECN-capable)."""

    # -- loss recovery ----------------------------------------------------------------

    def _enter_fast_recovery(self) -> None:
        self._on_loss_event()
        self.in_recovery = True
        self.recover_seq = self.next_seq
        self.cwnd = self.ssthresh + DUPACK_THRESHOLD * self.mss
        end = min(self.high_ack + self.mss, self.flow.size)
        self._transmit(self.high_ack, end, retransmit=True)

    def _on_rto(self) -> None:
        self._rto_event = None
        if self.complete:
            return
        self.timeouts += 1
        self.rto.on_timeout()
        self.ssthresh = max(self._bytes_in_flight() / 2,
                            float(2 * self.mss))
        self.cwnd = float(self.mss)
        self.in_recovery = False
        self.dup_acks = 0
        # Go-back-N: resume from the last cumulative ACK.
        self.next_seq = self.high_ack
        self._fill_window()
        self._arm_rto()

    # -- timer ----------------------------------------------------------------------

    def _arm_rto(self, restart: bool = False) -> None:
        if self._rto_event is not None:
            if not restart:
                return
            self.sim.cancel(self._rto_event)
        self._rto_event = self.sim.schedule(self.rto.rto_ns, self._on_rto)

    # -- completion -------------------------------------------------------------------

    def _finish(self) -> None:
        self.completed_at = self.sim.now
        if self._rto_event is not None:
            self.sim.cancel(self._rto_event)
            self._rto_event = None
        if self._on_complete is not None:
            self._on_complete(self)
