"""Transport-layer foundations: flows, receiver endpoint, sender interface.

The transports are deliberately *window-based models*, not byte-faithful
TCP stacks: the paper's mechanisms live in the switch, and what the
end-host must contribute is (a) filling the pipe, (b) reacting to loss or
ECN, and (c) carrying per-packet service-class tags.  Everything else
(SACK blocks, window scaling, Nagle, ...) is irrelevant to the reproduced
behaviour and is omitted.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..net.packet import ACK_BYTES, HEADER_BYTES, Packet
from ..sim.errors import TransportError


class Flow:
    """One unidirectional transfer of ``size`` bytes.

    ``service_class`` is the DSCP-derived traffic class; with PIAS enabled
    (``pias_threshold`` set, the paper uses 100 KB), bytes below the
    threshold are tagged class 0 (the shared SPQ queue) and the rest ride
    the flow's own service class — the two-level priority classification
    of the dynamic-flow experiments.
    """

    __slots__ = ("flow_id", "src", "dst", "size", "service_class",
                 "pias_threshold", "start_time", "ecn")

    def __init__(self, flow_id: int, src: str, dst: str, size: int, *,
                 service_class: int = 0,
                 pias_threshold: Optional[int] = None,
                 start_time: int = 0, ecn: bool = False) -> None:
        if size <= 0:
            raise TransportError(f"flow {flow_id} has non-positive size")
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size = size
        self.service_class = service_class
        self.pias_threshold = pias_threshold
        self.start_time = start_time
        self.ecn = ecn

    def class_for_offset(self, offset: int) -> int:
        """Service class of the packet whose payload starts at ``offset``."""
        if self.pias_threshold is not None and offset < self.pias_threshold:
            return 0
        return self.service_class


class FlowReceiver:
    """Receiver endpoint: reassembly + cumulative ACKs.

    ACKs echo the data packet's CE bit (``ece``), its send timestamp
    (``ts_echo``, suppressed for retransmitted segments so RTT samples obey
    Karn's rule), and its service class (so high-priority data gets
    high-priority ACKs).

    By default every data packet is ACKed immediately (the model used for
    all paper experiments — it matches DCTCP's intended per-packet CE
    feedback exactly).  With ``delayed_ack=True`` the receiver follows the
    RFC 1122 rules instead: ACK every second segment, or after
    ``delack_timeout_ns``, but immediately on out-of-order data or a CE
    mark.  Delayed ACKs make the ACK clock burstier, which is one of the
    reasons real testbeds show stronger best-effort unfairness than the
    smooth default model (see EXPERIMENTS.md).
    """

    def __init__(self, sim, host, flow_id: int, *,
                 delayed_ack: bool = False,
                 delack_timeout_ns: int = 1_000_000) -> None:
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.next_expected = 0
        self._out_of_order: Dict[int, int] = {}  # seq -> end_seq
        self.received_bytes = 0
        self.duplicate_packets = 0
        self.delayed_ack = delayed_ack
        self.delack_timeout_ns = delack_timeout_ns
        self._unacked_segments = 0
        self._delack_event = None
        self._last_data: Optional[Packet] = None
        self.acks_sent = 0

    def on_data(self, packet: Packet) -> None:
        """Absorb a data packet and emit (or schedule) the ACK."""
        in_order = packet.seq == self.next_expected
        if in_order:
            self.next_expected = packet.end_seq
            self.received_bytes += packet.payload
            while self.next_expected in self._out_of_order:
                end = self._out_of_order.pop(self.next_expected)
                self.received_bytes += end - self.next_expected
                self.next_expected = end
        elif packet.seq > self.next_expected:
            if packet.seq not in self._out_of_order:
                self._out_of_order[packet.seq] = packet.end_seq
            else:
                self.duplicate_packets += 1
        else:
            self.duplicate_packets += 1

        if not self.delayed_ack:
            self._send_ack(packet)
            return
        self._unacked_segments += 1
        self._last_data = packet
        must_ack_now = (not in_order or packet.ecn_ce
                        or self._unacked_segments >= 2)
        if must_ack_now:
            self._flush_ack()
        elif self._delack_event is None:
            self._delack_event = self.sim.schedule(
                self.delack_timeout_ns, self._flush_ack)

    def _flush_ack(self) -> None:
        if self._last_data is not None:
            self._send_ack(self._last_data)
        self._unacked_segments = 0
        self.sim.cancel(self._delack_event)
        self._delack_event = None

    def on_host_down(self) -> None:
        """Host-crash hook: cancel the pending delayed-ACK timer.

        Reassembly state (``next_expected``, out-of-order segments) is
        kept — see :meth:`repro.net.host.Host.crash` for the recovery
        semantics this models.
        """
        self.sim.cancel(self._delack_event)
        self._delack_event = None
        self._unacked_segments = 0
        self._last_data = None

    def _send_ack(self, data_packet: Packet) -> None:
        ack = Packet(
            flow_id=self.flow_id, src=self.host.name, dst=data_packet.src,
            size=ACK_BYTES, service_class=data_packet.service_class,
            ecn_capable=False, is_ack=True, ack_seq=self.next_expected,
            created_at=self.sim.now)
        ack.ece = data_packet.ecn_ce
        if not data_packet.retransmitted:
            ack.ts_echo = data_packet.created_at
        self.acks_sent += 1
        self.host.send_packet(ack)


class TransportSender:
    """Interface every sender-side transport implements."""

    protocol = "base"

    def __init__(self, sim, host, flow: Flow) -> None:
        self.sim = sim
        self.host = host
        self.flow = flow
        self.started_at: Optional[int] = None
        self.completed_at: Optional[int] = None

    def start(self) -> None:
        """Begin transmitting the flow."""
        raise NotImplementedError

    def on_ack(self, packet: Packet) -> None:
        """Handle an arriving ACK."""
        raise NotImplementedError

    def on_host_down(self) -> None:
        """Host-crash hook: suspend timers and sending (default no-op)."""

    def restart_after_crash(self) -> None:
        """Host-restart hook: reset transport state, resume (default no-op)."""

    @property
    def complete(self) -> bool:
        return self.completed_at is not None

    def fct_ns(self) -> int:
        """Flow completion time (start of flow to last byte acked)."""
        if self.started_at is None or self.completed_at is None:
            raise TransportError(
                f"flow {self.flow.flow_id} has not completed")
        return self.completed_at - self.started_at


def segment_sizes(flow_size: int, mss: int) -> List[Tuple[int, int]]:
    """Split a flow into ``(seq, end_seq)`` segments of at most ``mss``."""
    segments = []
    offset = 0
    while offset < flow_size:
        end = min(offset + mss, flow_size)
        segments.append((offset, end))
        offset = end
    return segments


def wire_size(payload: int) -> int:
    """Payload bytes to on-the-wire packet size."""
    return payload + HEADER_BYTES
