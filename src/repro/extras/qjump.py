"""QJump (Grosvenor et al., NSDI'15) — related-work comparator.

QJump trades throughput for latency *variance*: traffic classes map to
strict-priority levels, and level *i* is host-rate-limited to ``C / f_i``
(``f_i`` the "throughput factor").  At the top level (``f = n``, one
packet per network epoch) queueing is provably bounded — latency
guaranteed by admission, not by buffer management.  The paper's §II-C
cites it as a multi-queue design whose goal (bounded latency for a few
flows) is orthogonal to service isolation: rate limits are static, so
unused high-level capacity is simply *lost*, the mirror image of PQL's
buffer non-work-conservation.

Implementation: the switch runs plain SPQ (already in
:mod:`repro.queueing.schedulers.spq`); this module adds the host-side
per-level token-bucket pacing and a tagged-flow helper.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..net.host import Host
from ..net.packet import Packet
from ..net.tokenbucket import TokenBucket
from ..sim.errors import ConfigurationError


class QJumpLevel:
    """One latency level: a priority and a throughput factor."""

    __slots__ = ("level", "throughput_factor")

    def __init__(self, level: int, throughput_factor: float) -> None:
        if throughput_factor < 1:
            raise ConfigurationError(
                f"throughput factor must be >= 1, got {throughput_factor}")
        self.level = level
        self.throughput_factor = throughput_factor


class QJumpConfig:
    """A ladder of levels; level 0 is the highest priority.

    ``factors[i]`` is level *i*'s throughput factor; the classic setup is
    ``[n_hosts, sqrt(n_hosts), 1]`` — guaranteed / low-variance / bulk.
    """

    def __init__(self, factors: Sequence[float]) -> None:
        if not factors:
            raise ConfigurationError("need at least one level")
        self.levels = [QJumpLevel(i, factor)
                       for i, factor in enumerate(factors)]

    @property
    def num_levels(self) -> int:
        return len(self.levels)


class QJumpPacer:
    """Host-side per-level rate limiting (the QJump kernel module).

    Wraps a host's ``send_packet``: data packets of level *i* pass
    through a token bucket of rate ``line_rate / f_i``; packets that
    exceed the allowance are *delayed* (scheduled for the bucket's next
    availability), never dropped — QJump polices at the source.  ACKs
    bypass pacing.
    """

    def __init__(self, host: Host, config: QJumpConfig, *,
                 burst_packets: int = 2, mtu_bytes: int = 1500) -> None:
        self.host = host
        self.config = config
        rate = host.nic.link_rate_bps
        self.buckets: List[TokenBucket] = [
            TokenBucket(max(int(rate / level.throughput_factor), 1),
                        burst_packets * mtu_bytes)
            for level in config.levels
        ]
        self.delayed_packets = 0
        self._original_send = host.send_packet
        host.send_packet = self._paced_send

    def _paced_send(self, packet: Packet) -> None:
        if packet.is_ack:
            self._original_send(packet)
            return
        level = min(packet.service_class, self.config.num_levels - 1)
        bucket = self.buckets[level]
        now = self.host.sim.now
        if bucket.try_consume(now, packet.size):
            self._original_send(packet)
            return
        self.delayed_packets += 1
        ready = bucket.next_available_ns(now, packet.size)
        self.host.sim.at(ready, self._release, packet, level)

    def _release(self, packet: Packet, level: int) -> None:
        bucket = self.buckets[level]
        now = self.host.sim.now
        if bucket.try_consume(now, packet.size):
            self._original_send(packet)
        else:
            # Competing packets drained the refill; retry at the new ETA.
            ready = bucket.next_available_ns(now, packet.size)
            self.host.sim.at(max(ready, now + 1), self._release,
                             packet, level)


def install_qjump(hosts, config: QJumpConfig) -> Dict[str, QJumpPacer]:
    """Attach a :class:`QJumpPacer` to every host; returns them by name."""
    pacers = {}
    for host in hosts:
        if host.nic is None:
            raise ConfigurationError(f"{host.name} has no NIC to pace")
        pacers[host.name] = QJumpPacer(host, config)
    return pacers
