"""Related-work systems beyond the paper's comparison set (pFabric, QJump)."""

from .pfabric import (
    PFabricPort,
    PFabricSender,
    build_pfabric_star,
    start_pfabric_flow,
)
from .qjump import QJumpConfig, QJumpLevel, QJumpPacer, install_qjump

__all__ = [
    "PFabricPort",
    "PFabricSender",
    "build_pfabric_star",
    "start_pfabric_flow",
    "QJumpConfig",
    "QJumpLevel",
    "QJumpPacer",
    "install_qjump",
]
