"""pFabric (Alizadeh et al., SIGCOMM'13) — related-work comparator.

The paper's §II-C points out that pFabric "uses multiple queues, but
aims at minimizing the FCT of small flows, not isolating service
queues."  This module implements enough of pFabric to demonstrate both
halves of that sentence:

* **priority buffering** — every data packet carries its flow's
  *remaining size* as a priority (lower = more urgent); a full port
  evicts the worst-priority buffered packet to admit a better one;
* **priority dequeue** — the port serves the flow holding the
  best-priority packet, transmitting that flow's *earliest* buffered
  packet (the original paper's trick to avoid intra-flow reordering);
* **minimal rate control** — senders start at (a multiple of) the BDP
  and rely on the fabric's priority dropping plus the RTO, instead of
  conservative window dynamics.

What pFabric deliberately lacks is the thing DynaQ provides: any notion
of *service weights*.  ``benchmarks/test_pfabric_comparison.py`` shows
pFabric's excellent small-flow FCT alongside its total indifference to
operator-configured shares.
"""

from __future__ import annotations

from typing import List, Optional

from ..net.packet import Packet
from ..net.topology import Network
from ..net.host import Host
from ..net.switch import Switch
from ..sim.engine import Simulator
from ..sim.errors import ConfigurationError
from ..sim.trace import TOPIC_PACKET_DEQUEUE, TOPIC_PACKET_DROP, TraceBus
from ..sim.units import bandwidth_delay_product, transmission_time
from ..transport.base import Flow
from ..transport.tcp import TCPSender

# pFabric uses very shallow buffers: ~2x BDP is the paper's guidance.
DEFAULT_BUFFER_BDP_MULTIPLE = 2.0


class PFabricPort:
    """A priority-buffered, priority-served egress port.

    Interface-compatible with :class:`~repro.net.port.EgressPort` where
    the rest of the stack needs it (``send``, ``connect``, counters),
    but holds one priority-ordered buffer instead of service queues.
    """

    def __init__(self, sim: Simulator, name: str, *, rate_bps: int,
                 prop_delay_ns: int, buffer_bytes: int,
                 trace: Optional[TraceBus] = None) -> None:
        if rate_bps <= 0 or buffer_bytes <= 0:
            raise ConfigurationError(f"bad pFabric port config for {name}")
        self.sim = sim
        self.name = name
        self.link_rate_bps = rate_bps
        self.prop_delay_ns = prop_delay_ns
        self.buffer_bytes = buffer_bytes
        self.trace = trace
        self.peer = None
        self._buffer: List[Packet] = []   # arrival order preserved
        self._buffered_bytes = 0
        self._busy = False
        self.enqueued_packets = 0
        self.dropped_packets = 0
        self.transmitted_packets = 0
        self.evictions = 0

    def connect(self, peer) -> None:
        self.peer = peer

    def total_bytes(self) -> int:
        return self._buffered_bytes

    # -- admission with priority eviction ------------------------------------------

    def send(self, packet: Packet) -> None:
        if self.peer is None:
            raise ConfigurationError(f"port {self.name} is not connected")
        while (self._buffered_bytes + packet.size > self.buffer_bytes
               and self._buffer):
            worst_index = max(range(len(self._buffer)),
                              key=lambda i: self._buffer[i].priority)
            worst = self._buffer[worst_index]
            if worst.priority <= packet.priority:
                break  # the arrival is the worst packet: drop it instead
            self._buffer.pop(worst_index)
            self._buffered_bytes -= worst.size
            self.dropped_packets += 1
            self.evictions += 1
            self._publish(TOPIC_PACKET_DROP, worst, "evicted by priority")
        if self._buffered_bytes + packet.size > self.buffer_bytes:
            self.dropped_packets += 1
            self._publish(TOPIC_PACKET_DROP, packet, "buffer full")
            return
        packet.enqueued_at = self.sim.now
        self._buffer.append(packet)
        self._buffered_bytes += packet.size
        self.enqueued_packets += 1
        if not self._busy:
            self._transmit_next()

    # -- priority dequeue --------------------------------------------------------------

    def _transmit_next(self) -> None:
        if not self._buffer:
            self._busy = False
            return
        best = min(self._buffer, key=lambda p: p.priority)
        # Serve the best flow's earliest packet to avoid reordering.
        chosen_index = None
        for index, packet in enumerate(self._buffer):
            if packet.flow_id == best.flow_id:
                chosen_index = index
                break
        packet = self._buffer.pop(chosen_index)
        self._buffered_bytes -= packet.size
        self.transmitted_packets += 1
        self._busy = True
        self._publish(TOPIC_PACKET_DEQUEUE, packet, "")
        tx_ns = transmission_time(packet.size, self.link_rate_bps)
        self.sim.schedule(tx_ns, self._on_transmit_complete)
        self.sim.schedule(tx_ns + self.prop_delay_ns,
                          self.peer.receive, packet)

    def _on_transmit_complete(self) -> None:
        self._transmit_next()

    def _publish(self, topic: str, packet: Packet, detail: str) -> None:
        if self.trace is not None and self.trace.has_subscribers(topic):
            self.trace.publish(topic, port=self.name, time=self.sim.now,
                               packet=packet, queue=0, detail=detail,
                               queue_bytes=(self._buffered_bytes,))


class PFabricSender(TCPSender):
    """Minimal-rate-control sender stamping remaining-size priorities."""

    protocol = "pfabric"

    def __init__(self, sim, host, flow: Flow, *,
                 initial_window_bytes: Optional[int] = None,
                 **kwargs) -> None:
        super().__init__(sim, host, flow, **kwargs)
        if initial_window_bytes is not None:
            self.cwnd = float(initial_window_bytes)
            # pFabric's "minimal rate control": start at line rate and
            # stay there — no slow-start overshoot (the fabric's priority
            # dropping replaces window probing).
            self.ssthresh = self.cwnd


def _ensure_priority_stamping(host: Host) -> None:
    """Wrap a host's ``send_packet`` to stamp pFabric priorities.

    Data packets carry the sending flow's *remaining* bytes (lower is
    more urgent, so short/nearly-done flows win); ACKs always jump the
    fabric with priority 0.  Idempotent per host.
    """
    if getattr(host, "_pfabric_stamping", False):
        return
    host._pfabric_stamping = True
    original = host.send_packet

    def stamped(packet: Packet) -> None:
        if packet.is_ack:
            packet.priority = 0
        else:
            sender = host.senders.get(packet.flow_id)
            if sender is not None:
                packet.priority = max(
                    sender.flow.size - sender.high_ack, 1)
        original(packet)

    host.send_packet = stamped


def build_pfabric_star(*, num_hosts: int, rate_bps: int, rtt_ns: int,
                       buffer_bdp_multiple: float =
                       DEFAULT_BUFFER_BDP_MULTIPLE,
                       sim: Optional[Simulator] = None,
                       trace: Optional[TraceBus] = None) -> Network:
    """A rack where every port is a :class:`PFabricPort`.

    Host NICs are pFabric ports too (the design assumes fabric-wide
    deployment).  Buffers are ``buffer_bdp_multiple x BDP`` as in the
    original paper's shallow-buffer setting.
    """
    sim = sim or Simulator()
    trace = trace or TraceBus()
    net = Network(sim, trace)
    switch = Switch(sim, "s0")
    net.switches["s0"] = switch
    buffer_bytes = int(
        bandwidth_delay_product(rate_bps, rtt_ns) * buffer_bdp_multiple)
    link_prop = rtt_ns // 4
    for index in range(num_hosts):
        name = f"h{index}"
        host = Host(sim, name, trace=trace)
        # Host NICs buffer in host memory, not fabric SRAM: deep enough
        # that a line-rate window never self-evicts at its own NIC.
        nic = PFabricPort(sim, f"{name}.nic", rate_bps=rate_bps,
                          prop_delay_ns=link_prop,
                          buffer_bytes=max(8 * buffer_bytes, 512_000),
                          trace=trace)
        nic.connect(switch)
        host.nic = nic
        down = PFabricPort(sim, f"s0->{name}", rate_bps=rate_bps,
                           prop_delay_ns=link_prop,
                           buffer_bytes=buffer_bytes, trace=trace)
        down.connect(host)
        switch.add_route(name, down)
        net.hosts[name] = host
    return net


def start_pfabric_flow(net: Network, flow: Flow, *,
                       on_complete=None,
                       min_rto_ns: Optional[int] = None) -> PFabricSender:
    """Create, register, and start a pFabric flow on ``net``."""
    host = net.host(flow.src)
    bdp = bandwidth_delay_product(
        host.nic.link_rate_bps, host.nic.prop_delay_ns * 4)
    kwargs = {"initial_window_bytes": 2 * max(bdp, 15_000),
              "on_complete": on_complete}
    if min_rto_ns is not None:
        kwargs["min_rto_ns"] = min_rto_ns
    sender = PFabricSender(net.sim, host, flow, **kwargs)
    host.register_sender(sender)
    _ensure_priority_stamping(host)
    net.sim.at(flow.start_time, sender.start)
    return sender
