"""Simulation-as-a-service: the ``repro serve`` daemon and its client.

A long-lived asyncio daemon accepts JSON job submissions over a unix
socket, fans them out to the same crash-isolated
:class:`~repro.experiments.fleet.WorkerFleet` the sweep executor uses,
and survives everything the executor survives — worker crashes, its own
SIGKILL — via a write-ahead job log in the
:class:`~repro.experiments.parallel.SweepCheckpoint` file format.  See
``docs/serving.md`` for the architecture and the exactly-once contract.
"""

from .client import ServeClient
from .daemon import ServeConfig, ServeDaemon
from .protocol import (
    REFUSAL_STATUSES,
    STATUS_ACCEPTED,
    STATUS_DRAINING,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_PENDING,
    STATUS_SHED,
    STATUS_UNKNOWN,
    TERMINAL_STATUSES,
)
from .wal import JobLog

__all__ = [
    "JobLog", "ServeClient", "ServeConfig", "ServeDaemon",
    "REFUSAL_STATUSES", "TERMINAL_STATUSES",
    "STATUS_ACCEPTED", "STATUS_DRAINING", "STATUS_ERROR", "STATUS_OK",
    "STATUS_OVERLOADED", "STATUS_PENDING", "STATUS_SHED",
    "STATUS_UNKNOWN",
]
