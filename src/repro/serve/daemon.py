"""The ``repro serve`` daemon: a crash-tolerant job-queue service.

One asyncio event loop runs two things: a unix-socket server answering
the :mod:`~repro.serve.protocol` ops, and a scheduler coroutine that
feeds accepted jobs to a :class:`~repro.experiments.fleet.WorkerFleet`
(the same crash-isolated spawn-per-attempt workers the sweep executor
uses).  The scheduler's blocking fleet poll runs in a thread via
``run_in_executor``; every data structure is mutated only on the event
loop, so there is no locking beyond what the fleet does internally.

Robustness model, in one paragraph: admissions are written to the
write-ahead :class:`~repro.serve.wal.JobLog` *before* they are
acknowledged, so a SIGKILLed daemon re-queues exactly the jobs it owed
on restart (exactly-once by parameter digest); a worker that dies or
stops heartbeating is SIGKILLed and its job migrates to a fresh worker
by restoring the job's latest autosave mid-flight (corrupt or missing
autosaves degrade to a same-seed t=0 run, so results stay
byte-identical under any number of kills); retries
are budgeted with deterministic jittered exponential backoff; and when
the queue is full the LQD admission policy sheds from the client with
the longest backlog, telling the victim explicitly.  SIGTERM starts a
drain: no new admissions, running jobs finish (or are autosaved and cut
at the deadline), then a clean exit 0.  ``--drill`` kills a random live
worker on a cadence to prove all of this continuously.  See
``docs/serving.md``.
"""

from __future__ import annotations

import asyncio
import random
import re
import signal
import socket as socket_module
import time
from pathlib import Path
from typing import Any, Dict, List, NamedTuple, Optional, Union

from ..errors import EXIT_OK, ServeError
from ..experiments.fleet import (
    EVENT_DIED,
    EVENT_ERROR,
    EVENT_FATAL,
    EVENT_OK,
    FleetEvent,
    WorkerFleet,
    WorkerHandle,
)
from ..experiments.parallel import (
    JOB_KINDS,
    JobSpec,
    _attempt_job,
    _spec_out,
    job_key,
)
from ..experiments.runner import retry_backoff
from ..sim.trace import TOPIC_SERVE_JOB, TraceBus
from .protocol import (
    MAX_FRAME_BYTES,
    OP_JOBS,
    OP_RESULT,
    OP_STATUS,
    OP_SUBMIT,
    STATUS_ACCEPTED,
    STATUS_DRAINING,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_PENDING,
    STATUS_SHED,
    STATUS_UNKNOWN,
    decode_frame,
    encode_frame,
)
from .wal import JobLog

PathLike = Union[str, Path]

#: Scheduler tick: how long one fleet poll blocks.  Bounds drill/evict/
#: drain latency; well under the default heartbeat cadence.
POLL_S = 0.25

#: Job states.  ``queued``/``running`` are live; the rest are terminal
#: and mirror the WAL statuses.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
SHED = "shed"

_STATE_BY_STATUS = {STATUS_OK: DONE, STATUS_ERROR: FAILED,
                    STATUS_SHED: SHED}


class ServeConfig(NamedTuple):
    """Everything the daemon needs, in one picklable bundle."""

    socket_path: str
    wal: str
    jobs: int = 2                       # worker slots
    retries: int = 2                    # extra attempts per job
    max_queue: int = 64                 # queued (not running) jobs
    max_per_client: int = 16            # live jobs per client
    heartbeat_every_s: float = 0.5      # worker beat cadence
    heartbeat_timeout_s: float = 5.0    # silence before eviction (0 = off)
    job_deadline_s: float = 0.0         # wall-clock cap per attempt (0 = off)
    backoff_s: float = 0.25             # retry backoff base (0 = off)
    drain_timeout_s: float = 10.0       # grace after SIGTERM
    autosave_every_ns: Optional[int] = None  # mid-sim autosave cadence
    drill: bool = False                 # kill a random worker on a cadence
    drill_interval_s: float = 1.0
    drill_seed: int = 1


class ServeJob:
    """One submitted job, from admission to its terminal WAL entry."""

    __slots__ = ("key", "kind", "client", "spec", "state", "attempt",
                 "seed_attempt", "restore", "ready_at", "seed_used",
                 "entry", "waiters")

    def __init__(self, key: str, kind: str, client: str,
                 spec: Optional[JobSpec]) -> None:
        self.key = key
        self.kind = kind
        self.client = client
        self.spec = spec
        self.state = QUEUED
        self.attempt = 0           # attempts launched so far
        self.seed_attempt = 1      # reseed index (lags on restore retries)
        self.restore = False       # restore from autosave on next launch
        self.ready_at = 0.0        # monotonic backoff gate
        self.seed_used: Optional[int] = None
        self.entry: Optional[Dict[str, Any]] = None  # terminal WAL entry
        self.waiters: List[asyncio.Future] = []

    @property
    def live(self) -> bool:
        return self.state in (QUEUED, RUNNING)


class ServeDaemon:
    """See the module docstring; construct with a :class:`ServeConfig`."""

    def __init__(self, config: ServeConfig, *,
                 trace: Optional[TraceBus] = None) -> None:
        self.config = config
        self.trace = trace if trace is not None else TraceBus()
        self._started = time.monotonic()
        self._wal = JobLog(config.wal)
        self._jobs: Dict[str, ServeJob] = {}
        self._queue: List[str] = []
        self._fleet = WorkerFleet(
            heartbeat_every_s=(config.heartbeat_every_s
                               if config.heartbeat_timeout_s else None))
        self._draining = False
        self._drain_deadline = 0.0
        self._drill_rng = random.Random(config.drill_seed)
        self._next_drill: Optional[float] = None
        self._evicted: set = set()  # handle ids already SIGKILLed
        self._replay()

    # -- WAL replay: the daemon's memory across its own crashes ---------------

    def _replay(self) -> None:
        unfinished, terminal = self._wal.replay()
        for key, entry in terminal.items():
            job = ServeJob(key, str(entry.get("kind", "")),
                           str(entry.get("client", "")), None)
            job.state = _STATE_BY_STATUS[entry["status"]]
            job.entry = entry
            self._jobs[key] = job
        for key, entry in unfinished.items():
            kind = entry.get("kind")
            params = entry.get("params")
            if kind not in JOB_KINDS or not isinstance(params, dict):
                continue  # WAL written by a newer/older daemon; skip
            job = self._make_job(key, kind, params, entry.get("seed"),
                                 str(entry.get("client", "")))
            # An autosave left by the previous incarnation resumes the
            # job mid-flight with the seed it was produced under.
            job.restore = self._autosave_exists(job)
            self._jobs[key] = job
            self._queue.append(key)
            self._publish("recovered", key)

    def _make_job(self, key: str, kind: str, params: Dict[str, Any],
                  seed: Optional[int], client: str) -> ServeJob:
        spec = JobSpec(key, kind, params, seed=seed,
                       snapshot=self._autosave_spec(key, kind))
        return ServeJob(key, kind, client, spec)

    def _autosave_spec(self, key: str,
                       kind: str) -> Optional[Dict[str, Any]]:
        if not self.config.autosave_every_ns or not JOB_KINDS[kind].snapshot:
            return None
        directory = self._wal.path.with_name(self._wal.path.name
                                             + ".autosaves")
        directory.mkdir(parents=True, exist_ok=True)
        name = re.sub(r"[^\w.@=-]+", "_", key) + ".snap"
        return {"every_ns": self.config.autosave_every_ns,
                "out": str(directory / name)}

    def _autosave_exists(self, job: ServeJob) -> bool:
        out = _spec_out(job.spec) if job.spec else None
        return bool(out and Path(out).exists())

    # -- trace ----------------------------------------------------------------

    def _publish(self, detail: str, key: str = "") -> None:
        self.trace.publish(
            TOPIC_SERVE_JOB,
            time=int((time.monotonic() - self._started) * 1e9),
            detail=f"{detail} {key}".strip())

    # -- admission control ----------------------------------------------------

    def _admit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        kind = request.get("kind")
        if kind not in JOB_KINDS:
            return {"status": STATUS_ERROR,
                    "error": f"unknown job kind {kind!r}; "
                             f"known: {sorted(JOB_KINDS)}"}
        params = request.get("params")
        if not isinstance(params, dict):
            return {"status": STATUS_ERROR,
                    "error": "params must be a JSON object"}
        seed = request.get("seed")
        client = str(request.get("client") or "anon")
        try:
            key = job_key(kind, params)
        except Exception as exc:
            return {"status": STATUS_ERROR, "error": str(exc)}

        existing = self._jobs.get(key)
        if existing is not None:
            if existing.state in (DONE, FAILED):
                # Exactly-once: the digest matched finished work, so the
                # stored outcome is served instead of re-running.
                return {"status": STATUS_ACCEPTED, "key": key,
                        "cached": True}
            if existing.live:
                return {"status": STATUS_ACCEPTED, "key": key,
                        "cached": False, "dedup": True}
            # A shed job is terminal in the WAL but retriable by intent:
            # resubmission goes through admission again from scratch.
        if self._draining:
            return {"status": STATUS_DRAINING, "key": key}

        live = [job for job in self._jobs.values() if job.live]
        mine = sum(1 for job in live if job.client == client)
        if mine >= self.config.max_per_client:
            return {"status": STATUS_OVERLOADED, "key": key,
                    "reason": f"client {client!r} already has {mine} "
                              f"live jobs (limit {self.config.max_per_client})"}
        if len(self._queue) >= self.config.max_queue:
            victim = self._lqd_victim(client)
            if victim is None:
                return {"status": STATUS_OVERLOADED, "key": key,
                        "reason": f"queue full ({self.config.max_queue}) "
                                  f"and {client!r} has the longest backlog"}
            self._shed(victim)

        self._wal.accepted(key, kind=kind, params=params, seed=seed,
                           client=client)
        job = self._make_job(key, kind, params, seed, client)
        self._jobs[key] = job
        self._queue.append(key)
        self._publish("accepted", key)
        return {"status": STATUS_ACCEPTED, "key": key, "cached": False}

    def _lqd_victim(self, submitter: str) -> Optional[str]:
        """Longest-queue-drop: the newest queued job of the most-backlogged
        client, or ``None`` when that client is the submitter (shedding
        your own oldest work to admit your newest helps nobody)."""
        backlog: Dict[str, List[str]] = {}
        for key in self._queue:
            backlog.setdefault(self._jobs[key].client, []).append(key)
        if not backlog:
            return None
        longest = max(backlog, key=lambda name: (len(backlog[name]), name))
        if longest == submitter:
            return None
        return backlog[longest][-1]

    def _shed(self, key: str) -> None:
        job = self._jobs[key]
        self._queue.remove(key)
        job.state = SHED
        job.entry = {"key": key, "status": STATUS_SHED,
                     "client": job.client,
                     "error": "shed by admission control"}
        self._wal.shed(key, client=job.client)
        self._publish("shed", key)
        self._resolve_waiters(job)

    # -- scheduler ------------------------------------------------------------

    async def _scheduler(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            now = time.monotonic()
            if self._draining:
                if not len(self._fleet):
                    break
                if now >= self._drain_deadline:
                    # Running jobs are cut; their autosaves and their
                    # ``accepted`` WAL entries survive for the restart.
                    self._publish("drain-timeout")
                    self._fleet.terminate_all()
                    break
            else:
                self._launch_ready(now)
            events = await loop.run_in_executor(None, self._fleet.poll,
                                                POLL_S)
            now = time.monotonic()
            for event in events:
                self._handle_event(event, now)
            self._evict_overdue(now)
            if self.config.drill and not self._draining:
                self._maybe_drill(now)

    def _launch_ready(self, now: float) -> None:
        while self._queue and len(self._fleet) < self.config.jobs:
            for index, key in enumerate(self._queue):
                if self._jobs[key].ready_at <= now:
                    del self._queue[index]
                    break
            else:
                return  # everything runnable is still backing off
            self._launch(self._jobs[key])

    def _launch(self, job: ServeJob) -> None:
        assert job.spec is not None
        restore = job.restore and self._autosave_exists(job)
        job.attempt += 1
        params, seed, snapshot_spec = _attempt_job(job.spec,
                                                   job.seed_attempt,
                                                   restore)
        job.seed_used = seed
        job.state = RUNNING
        self._fleet.launch(job.kind, params, snapshot_spec, token=job.key)
        if job.attempt == 1:
            label = "started"
        elif restore:
            # The job moved to a fresh worker and resumed mid-flight
            # from its autosave — same seed, no work lost.
            label = f"migrated[{job.attempt}]"
        else:
            label = f"retried[{job.attempt}]"
        self._publish(label, job.key)

    def _handle_event(self, event: FleetEvent, now: float) -> None:
        self._evicted.discard(id(event.handle))
        job = self._jobs.get(event.handle.token)
        if job is None or job.state != RUNNING:
            return  # heartbeat, or a worker outliving a shed/drained job
        if event.kind == EVENT_OK:
            job.state = DONE
            job.entry = {"key": job.key, "status": STATUS_OK,
                         "payload": event.payload,
                         "attempts": job.attempt, "seed": job.seed_used,
                         "client": job.client}
            self._wal.finished(job.key, payload=event.payload,
                               attempts=job.attempt, seed=job.seed_used,
                               client=job.client)
            self._publish(f"done[{job.attempt}]", job.key)
            self._gc_autosave(job)
            self._resolve_waiters(job)
            return
        if event.kind == EVENT_FATAL:
            # Unlike the sweep executor, a service must outlive worker
            # bugs: record the failure and keep serving.
            self._fail(job, f"worker raised: {event.payload}")
            return
        if event.kind not in (EVENT_ERROR, EVENT_DIED):
            return
        out = _spec_out(job.spec) if job.spec else None
        if event.kind == EVENT_DIED:
            error = f"worker died (exit code {event.payload})"
        else:
            error = str(event.payload)
        if job.attempt <= self.config.retries:
            if event.kind == EVENT_DIED:
                # A death (drill, eviction, OOM) says nothing about the
                # seed: retry the SAME seed, restored mid-flight when an
                # autosave exists, from t=0 otherwise.  Simulations are
                # deterministic per seed, so results under any number of
                # kills stay byte-identical to an unkilled run.
                job.restore = bool(out and Path(out).exists())
            else:
                # A SimulationError indicts the seed itself: reseed and
                # discard the autosave the failed seed wrote.
                if out:
                    Path(out).unlink(missing_ok=True)
                job.restore = False
                job.seed_attempt = job.attempt + 1
            job.state = QUEUED
            job.ready_at = now + retry_backoff(
                job.key, job.attempt + 1, base_s=self.config.backoff_s)
            self._queue.append(job.key)
        else:
            self._fail(job, error)

    def _fail(self, job: ServeJob, error: str) -> None:
        job.state = FAILED
        job.entry = {"key": job.key, "status": STATUS_ERROR,
                     "error": error, "attempts": job.attempt,
                     "seed": job.seed_used, "client": job.client}
        self._wal.failed(job.key, error=error, attempts=job.attempt,
                         seed=job.seed_used, client=job.client)
        self._publish(f"failed[{job.attempt}]", job.key)
        # The autosave stays on disk: it is the triage evidence and the
        # resume point if the job is ever resubmitted after a fix.
        self._resolve_waiters(job)

    def _gc_autosave(self, job: ServeJob) -> None:
        out = _spec_out(job.spec) if job.spec else None
        if not out:
            return
        Path(out).unlink(missing_ok=True)
        try:
            Path(out).parent.rmdir()
        except OSError:
            pass  # other jobs' autosaves still live there

    # -- health: heartbeats, deadlines, drills --------------------------------

    def _evict_overdue(self, now: float) -> None:
        config = self.config
        for handle in self._fleet.live():
            if id(handle) in self._evicted:
                continue
            hb_late = bool(config.heartbeat_timeout_s
                           and now - handle.last_seen
                           > config.heartbeat_timeout_s)
            too_long = bool(config.job_deadline_s
                            and now - handle.started_at
                            > config.job_deadline_s)
            if not (hb_late or too_long):
                continue
            self._publish("heartbeat-missed" if hb_late
                          else "deadline-exceeded", str(handle.token))
            self._evicted.add(id(handle))
            self._fleet.evict(handle)
            # The kill surfaces as a ``died`` event on the next poll and
            # the job migrates through the ordinary autosave path.

    def _maybe_drill(self, now: float) -> None:
        if self._next_drill is None:
            self._next_drill = now + self.config.drill_interval_s
        if now < self._next_drill:
            return
        self._next_drill = now + self.config.drill_interval_s
        victims = [handle for handle in self._fleet.live()
                   if id(handle) not in self._evicted]
        if not victims:
            return
        handle = self._drill_rng.choice(victims)
        self._publish("drill", str(handle.token))
        self._evicted.add(id(handle))
        self._fleet.evict(handle)

    # -- protocol server ------------------------------------------------------

    async def run(self) -> int:
        """Serve until a drain completes; returns the process exit code."""
        self._prepare_socket()
        loop = asyncio.get_running_loop()
        installed = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, self._begin_drain, signal.Signals(sig).name)
                installed.append(sig)
            except (NotImplementedError, ValueError, RuntimeError):
                pass  # non-main thread or exotic platform: tests drive
                      # _begin_drain directly
        server = await asyncio.start_unix_server(
            self._handle_client, path=str(self.config.socket_path),
            limit=MAX_FRAME_BYTES)
        self._publish("listening", str(self.config.socket_path))
        try:
            await self._scheduler()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
            server.close()
            await server.wait_closed()
            self._finish_drain()
            self._wal.close()
            Path(self.config.socket_path).unlink(missing_ok=True)
        return EXIT_OK

    def _prepare_socket(self) -> None:
        path = Path(self.config.socket_path)
        if path.exists():
            probe = socket_module.socket(socket_module.AF_UNIX,
                                         socket_module.SOCK_STREAM)
            probe.settimeout(1.0)
            try:
                probe.connect(str(path))
            except ConnectionRefusedError:
                path.unlink()  # stale socket of a dead daemon
            except OSError as exc:
                raise ServeError(
                    f"socket path {path} exists and is not a stale "
                    f"socket: {exc}") from exc
            else:
                raise ServeError(
                    f"another daemon is already serving on {path}")
            finally:
                probe.close()
        if path.parent and not path.parent.exists():
            path.parent.mkdir(parents=True, exist_ok=True)

    def _begin_drain(self, reason: str) -> None:
        if self._draining:
            return
        self._draining = True
        self._drain_deadline = (time.monotonic()
                                + self.config.drain_timeout_s)
        self._publish(f"drain ({reason})")

    def _finish_drain(self) -> None:
        # Jobs still live stay ``accepted`` in the WAL — the restart
        # re-queues them — but their waiters must not hang.
        for job in self._jobs.values():
            if job.live:
                for future in job.waiters:
                    if not future.done():
                        future.set_result({"status": STATUS_DRAINING,
                                           "key": job.key})
                job.waiters.clear()
        self._publish("drain-complete")

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    response = await self._dispatch(decode_frame(line))
                except ServeError as exc:
                    response = {"status": STATUS_ERROR, "error": str(exc)}
                writer.write(encode_frame(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, ValueError):
            pass  # client went away mid-request, or overlong frame
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        if op == OP_SUBMIT:
            return await self._op_submit(request)
        if op == OP_RESULT:
            return await self._op_result(request)
        if op == OP_JOBS:
            return self._op_jobs()
        if op == OP_STATUS:
            return self._op_status()
        return {"status": STATUS_ERROR, "error": f"unknown op {op!r}"}

    async def _op_submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        response = self._admit(request)
        if response["status"] != STATUS_ACCEPTED or not request.get("wait"):
            return response
        return await self._wait_terminal(self._jobs[response["key"]])

    async def _op_result(self, request: Dict[str, Any]) -> Dict[str, Any]:
        key = str(request.get("key", ""))
        job = self._jobs.get(key)
        if job is None:
            return {"status": STATUS_UNKNOWN, "key": key}
        if job.live:
            if request.get("wait"):
                return await self._wait_terminal(job)
            return {"status": STATUS_PENDING, "key": key,
                    "state": job.state, "attempts": job.attempt}
        return self._job_result(job)

    def _op_jobs(self) -> Dict[str, Any]:
        return {"status": STATUS_OK,
                "jobs": [{"key": job.key, "state": job.state,
                          "client": job.client, "kind": job.kind,
                          "attempts": job.attempt}
                         for job in self._jobs.values()]}

    def _op_status(self) -> Dict[str, Any]:
        return {"status": STATUS_OK,
                "accepting": not self._draining,
                "draining": self._draining,
                "queued": len(self._queue),
                "running": len(self._fleet),
                "jobs": len(self._jobs),
                "drill": self.config.drill}

    async def _wait_terminal(self, job: ServeJob) -> Dict[str, Any]:
        if not job.live:
            return self._job_result(job)
        future = asyncio.get_running_loop().create_future()
        job.waiters.append(future)
        return await future

    def _job_result(self, job: ServeJob) -> Dict[str, Any]:
        entry = job.entry or {}
        response: Dict[str, Any] = {"status": entry.get("status",
                                                        STATUS_ERROR),
                                    "key": job.key,
                                    "attempts": entry.get("attempts"),
                                    "seed": entry.get("seed")}
        if "payload" in entry:
            response["payload"] = entry["payload"]
        if "error" in entry:
            response["error"] = entry["error"]
        return response

    def _resolve_waiters(self, job: ServeJob) -> None:
        for future in job.waiters:
            if not future.done():
                future.set_result(self._job_result(job))
        job.waiters.clear()
