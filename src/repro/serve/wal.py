"""Write-ahead job log: the daemon's durable memory.

One JSONL file in the exact :class:`~repro.experiments.parallel.\
SweepCheckpoint` format — the daemon appends an ``accepted`` entry
*before* acknowledging a submission and a terminal entry (``ok`` /
``error`` / ``shed``) when the job ends, so a SIGKILL between the two
leaves an accepted-but-unfinished record that a restart re-queues.
Last entry per key wins, torn final lines are ignored, and because the
format is shared, ``repro sweep --resume``-style tooling can read a
serve WAL directly.

This is what makes the daemon exactly-once: a job is *accepted* at most
once (the parameter digest dedups resubmissions) and *finished* at most
once (a terminal entry is served from cache forever after).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from ..experiments.parallel import SweepCheckpoint
from .protocol import STATUS_ACCEPTED, STATUS_SHED, TERMINAL_STATUSES

PathLike = Union[str, Path]


class JobLog:
    """Append-only, replayable record of every job the daemon accepted."""

    def __init__(self, path: PathLike) -> None:
        # Always resume: the WAL's whole point is surviving restarts.
        self._store = SweepCheckpoint(path, resume=True)
        self.path = self._store.path

    def replay(self) -> Tuple[Dict[str, Dict[str, Any]],
                              Dict[str, Dict[str, Any]]]:
        """Split the log into ``(unfinished, terminal)`` entries by key.

        ``unfinished`` holds accepted-but-never-finished jobs — the
        crash-recovery work list; ``terminal`` holds finished outcomes
        the daemon serves from cache.
        """
        unfinished: Dict[str, Dict[str, Any]] = {}
        terminal: Dict[str, Dict[str, Any]] = {}
        for key, entry in self._store.entries().items():
            status = entry.get("status")
            if status == STATUS_ACCEPTED:
                unfinished[key] = entry
            elif status in TERMINAL_STATUSES:
                terminal[key] = entry
        return unfinished, terminal

    def accepted(self, key: str, *, kind: str, params: Dict[str, Any],
                 seed: Optional[int], client: str) -> None:
        """Log an admission; must hit disk before the client hears yes."""
        self._store.record(key, status=STATUS_ACCEPTED, kind=kind,
                           params=params, seed=seed, client=client)

    def finished(self, key: str, *, payload: Any, attempts: int,
                 seed: Optional[int], client: str) -> None:
        self._store.record(key, status="ok", payload=payload,
                           attempts=attempts, seed=seed, client=client)

    def failed(self, key: str, *, error: str, attempts: int,
               seed: Optional[int], client: str) -> None:
        self._store.record(key, status="error", error=error,
                           attempts=attempts, seed=seed, client=client)

    def shed(self, key: str, *, client: str) -> None:
        """The LQD policy dropped this queued job to admit another."""
        self._store.record(key, status=STATUS_SHED, client=client,
                           error="shed by admission control")

    def close(self) -> None:
        self._store.close()
