"""Synchronous client for the ``repro serve`` unix socket.

One connection per request keeps the client stateless and immune to a
daemon restart between calls — the WAL makes the *daemon* remember, so
the client never has to.  Transport problems (no daemon, refused
connection, torn reply) raise :class:`~repro.errors.ServeError`;
protocol-level refusals (``overloaded``, ``draining``) come back as
ordinary response dicts because they are answers, not failures.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Optional

from ..errors import ServeError
from .protocol import (
    MAX_FRAME_BYTES,
    OP_JOBS,
    OP_RESULT,
    OP_STATUS,
    OP_SUBMIT,
    decode_frame,
    encode_frame,
)


class ServeClient:
    """Talk to a daemon at ``socket_path``.

    ``timeout`` bounds non-waiting requests; ``wait=True`` calls use no
    timeout (a simulation takes as long as it takes — bound it with the
    daemon's ``--job-deadline`` instead).
    """

    def __init__(self, socket_path: str, *,
                 timeout: Optional[float] = 30.0) -> None:
        self.socket_path = str(socket_path)
        self.timeout = timeout

    def request(self, message: Dict[str, Any], *,
                wait: bool = False) -> Dict[str, Any]:
        """One request/response round trip on a fresh connection."""
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
                sock.settimeout(None if wait else self.timeout)
                sock.connect(self.socket_path)
                sock.sendall(encode_frame(message))
                line = self._read_line(sock)
        except ServeError:
            raise
        except (OSError, socket.timeout) as exc:
            raise ServeError(
                f"cannot reach daemon at {self.socket_path}: "
                f"{exc}") from exc
        return decode_frame(line)

    @staticmethod
    def _read_line(sock: socket.socket) -> bytes:
        chunks = []
        total = 0
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                if chunks:
                    break  # daemon closed after writing: torn or final
                raise ServeError("daemon closed the connection without "
                                 "a response")
            chunks.append(chunk)
            total += len(chunk)
            if total > MAX_FRAME_BYTES:
                raise ServeError("daemon response exceeds the frame limit")
            if chunk.endswith(b"\n"):
                break
        return b"".join(chunks)

    # -- ops ------------------------------------------------------------------

    def submit(self, kind: str, params: Dict[str, Any], *,
               seed: Optional[int] = None, client: str = "",
               wait: bool = False) -> Dict[str, Any]:
        message: Dict[str, Any] = {"op": OP_SUBMIT, "kind": kind,
                                   "params": params, "wait": wait}
        if seed is not None:
            message["seed"] = seed
        if client:
            message["client"] = client
        return self.request(message, wait=wait)

    def result(self, key: str, *, wait: bool = False) -> Dict[str, Any]:
        return self.request({"op": OP_RESULT, "key": key, "wait": wait},
                            wait=wait)

    def jobs(self) -> Dict[str, Any]:
        return self.request({"op": OP_JOBS})

    def status(self) -> Dict[str, Any]:
        return self.request({"op": OP_STATUS})
