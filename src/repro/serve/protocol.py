"""Wire protocol of the ``repro serve`` unix socket.

Newline-delimited JSON: every request and every response is one JSON
object on one line.  Requests carry an ``op`` (:data:`OPS`); responses
always carry a ``status``.  The status vocabulary is deliberately small
and explicit because refusals are part of the contract, not errors: a
daemon that answers ``overloaded`` or ``draining`` is shedding load by
design (the LQD admission policy of ``docs/serving.md``), and clients
must be able to tell that apart from a transport failure, which raises
:class:`~repro.errors.ServeError` instead.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from ..errors import ServeError

#: Request operations.
OP_SUBMIT = "submit"    # enqueue a job (optionally wait for its result)
OP_JOBS = "jobs"        # list every job the daemon knows about
OP_RESULT = "result"    # fetch (optionally wait for) one job's outcome
OP_STATUS = "status"    # daemon health: queue depths, drain state

OPS = (OP_SUBMIT, OP_JOBS, OP_RESULT, OP_STATUS)

#: Response statuses.  ``accepted`` acknowledges a submit; ``ok`` /
#: ``error`` / ``shed`` are terminal job outcomes (and the generic
#: success for ``jobs`` / ``status``); ``pending`` answers ``result``
#: for a job still in flight; ``overloaded`` / ``draining`` are
#: admission refusals; ``unknown`` is a ``result`` for a key the daemon
#: has never seen.
STATUS_ACCEPTED = "accepted"
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_SHED = "shed"
STATUS_PENDING = "pending"
STATUS_OVERLOADED = "overloaded"
STATUS_DRAINING = "draining"
STATUS_UNKNOWN = "unknown"

#: Statuses that end a job's life; a WAL entry with one of these never
#: changes again and is served from cache on resubmission.
TERMINAL_STATUSES = (STATUS_OK, STATUS_ERROR, STATUS_SHED)

#: Refusals a client maps to exit code 1 (the daemon said no).
REFUSAL_STATUSES = (STATUS_OVERLOADED, STATUS_DRAINING)

#: One-line frames keep the reader trivial, but an unbounded line is a
#: memory DoS from a confused client; simulation results stay far below
#: this.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def encode_frame(message: Dict[str, Any]) -> bytes:
    """One protocol message as bytes, newline included."""
    return (json.dumps(message, sort_keys=True) + "\n").encode()


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one received line; raises :class:`ServeError` on garbage."""
    if len(line) > MAX_FRAME_BYTES:
        raise ServeError(f"protocol frame exceeds {MAX_FRAME_BYTES} bytes")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServeError(f"malformed protocol frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ServeError(
            f"protocol frame must be a JSON object, got {type(message).__name__}")
    return message
