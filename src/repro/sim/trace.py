"""Lightweight tracing / probe hooks.

Components publish events ("packet dropped", "queue length changed", ...) to
a :class:`TraceBus`; metric collectors subscribe to the topics they care
about.  Publishing to a topic with no subscribers is a dict lookup and a
truth test, so tracing can stay compiled-in without slowing down large
simulations.  Publish sites whose payload is expensive to build use
:meth:`TraceBus.emit`, which defers payload construction behind the
subscriber check.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, DefaultDict, Dict, List

Subscriber = Callable[..., None]
PayloadFactory = Callable[[], Dict[str, Any]]


class TraceBus:
    """Minimal publish/subscribe bus keyed by string topics.

    :attr:`version` increments on every (un)subscription.  Hot publish
    sites (ports) cache per-topic "anyone listening?" flags keyed by this
    counter, so a publish to a silent topic costs one int compare and a
    dict lookup instead of building a payload — see
    ``docs/performance.md``.
    """

    def __init__(self) -> None:
        self._subscribers: DefaultDict[str, List[Subscriber]] = defaultdict(list)
        self.version = 0
        self._watchers: List[Callable[[], None]] = []

    def subscribe(self, topic: str, callback: Subscriber) -> None:
        """Register ``callback`` to be invoked on every ``publish(topic)``.

        Subscribing the same callback twice delivers each event twice;
        one :meth:`unsubscribe` removes one registration.
        """
        self._subscribers[topic].append(callback)
        self.version += 1
        for watcher in self._watchers:
            watcher()

    def unsubscribe(self, topic: str, callback: Subscriber) -> None:
        """Remove a previously registered callback (no-op if absent)."""
        callbacks = self._subscribers.get(topic)
        if callbacks and callback in callbacks:
            callbacks.remove(callback)
            self.version += 1
            for watcher in self._watchers:
                watcher()

    def add_watcher(self, callback: Callable[[], None]) -> None:
        """Call ``callback`` after every subscription change.

        Push-invalidation for hot publish sites: a port caches "is
        anyone listening?" flags and refreshes them from its watcher, so
        the per-publish fast path is a single attribute test with no
        version compare at all.
        """
        self._watchers.append(callback)

    def publish(self, topic: str, *args: Any, **kwargs: Any) -> None:
        """Invoke every subscriber of ``topic`` with the given payload.

        The subscriber list is snapshotted per publish: callbacks that
        subscribe or unsubscribe *during* delivery affect the next
        publish, not the one in flight.
        """
        callbacks = self._subscribers.get(topic)
        if callbacks:
            for callback in list(callbacks):
                callback(*args, **kwargs)

    def emit(self, topic: str, payload: PayloadFactory) -> None:
        """Guarded publish: build the payload only if someone listens.

        ``payload`` is a zero-argument callable returning the kwargs dict
        for the subscribers.  This factors the ``has_subscribers`` +
        ``publish`` idiom used by hot publish sites (ports, DynaQ) into
        one place, keeping tracing free when nobody is subscribed.
        """
        callbacks = self._subscribers.get(topic)
        if not callbacks:
            return
        kwargs = payload()
        for callback in list(callbacks):
            callback(**kwargs)

    def has_subscribers(self, topic: str) -> bool:
        """True if publishing to ``topic`` would call anyone."""
        return bool(self._subscribers.get(topic))


# Well-known topics used across the package.  Collectors import these
# constants instead of spelling the strings so typos fail loudly.
TOPIC_PACKET_DROP = "packet.drop"
TOPIC_PACKET_ENQUEUE = "packet.enqueue"
TOPIC_PACKET_DEQUEUE = "packet.dequeue"
TOPIC_PACKET_MARK = "packet.mark"
TOPIC_PACKET_DELIVERED = "packet.delivered"
TOPIC_FLOW_START = "flow.start"
TOPIC_FLOW_COMPLETE = "flow.complete"
TOPIC_THRESHOLD_CHANGE = "dynaq.threshold"
TOPIC_VICTIM_STEAL = "dynaq.steal"
TOPIC_DYNAQ_RECONFIGURE = "dynaq.reconfigure"
TOPIC_FAULT_INJECT = "fault.inject"
TOPIC_FAULT_RECOVER = "fault.recover"
#: Parallel-sweep job lifecycle (launch/retry/done/failed/cached).  These
#: events are published by the *parent* process of a worker pool; their
#: ``time`` field is wall-clock nanoseconds since the sweep started, not
#: simulated time (worker simulations each run their own clock).
TOPIC_PARALLEL_JOB = "parallel.job"
#: Service-tier job lifecycle published by the ``repro serve`` daemon
#: (accepted/started/heartbeat-missed/migrated/retried/done/failed/
#: shed/drain).  Like ``parallel.job``, ``time`` is wall-clock
#: nanoseconds — here since the daemon started — because the daemon
#: outlives any single simulation clock.
TOPIC_SERVE_JOB = "serve.job"
#: Queue-diagnosis snapshots: the flow composition of a service queue at
#: the instant it crossed its DynaQ threshold or took a drop.  Published
#: by ports only when the ``queue_diagnosis`` perf switch is on (see
#: repro.diagnosis), so the default datapath never emits these.
TOPIC_QUEUE_SNAPSHOT = "diagnosis.snapshot"
#: Competitive-ratio harness rounds: one event per finished
#: policy x adversary x buffer-size round with the measured ratio in
#: ``detail`` (see repro.experiments.competitive).  ``time`` is a
#: deterministic sequence number, not wall clock, so competitive traces
#: stay byte-identical between serial and ``--jobs N`` runs.
TOPIC_COMPETITIVE_ROUND = "competitive.round"
#: Soak-harness case verdicts: one event per finished randomized case
#: with the scenario digest and verdict in ``detail`` (see repro.soak).
#: Like ``competitive.round``, ``time`` is a deterministic sequence
#: number so soak traces stay byte-identical between serial and
#: ``--jobs N`` runs.
TOPIC_SOAK_CASE = "soak.case"
#: Snapshot lifecycle (autosave written / world restored).  Note: the
#: telemetry recorder does *not* subscribe to this topic by default —
#: save events carry the snapshot path and a restored invocation saves
#: on a different file, so recording them would break the byte-identity
#: of killed+restored traces vs uninterrupted runs.  Opt in explicitly
#: with ``--trace-topics snapshot.lifecycle``.
TOPIC_SNAPSHOT_LIFECYCLE = "snapshot.lifecycle"

#: Every well-known topic, in a stable order.  The telemetry recorder
#: subscribes to all of these by default, and the trace-file schema
#: checker treats anything else as unknown.
ALL_TOPICS = (
    TOPIC_PACKET_DROP,
    TOPIC_PACKET_ENQUEUE,
    TOPIC_PACKET_DEQUEUE,
    TOPIC_PACKET_MARK,
    TOPIC_PACKET_DELIVERED,
    TOPIC_FLOW_START,
    TOPIC_FLOW_COMPLETE,
    TOPIC_THRESHOLD_CHANGE,
    TOPIC_VICTIM_STEAL,
    TOPIC_DYNAQ_RECONFIGURE,
    TOPIC_FAULT_INJECT,
    TOPIC_FAULT_RECOVER,
    TOPIC_PARALLEL_JOB,
    TOPIC_SERVE_JOB,
    TOPIC_COMPETITIVE_ROUND,
    TOPIC_SOAK_CASE,
    TOPIC_QUEUE_SNAPSHOT,
    TOPIC_SNAPSHOT_LIFECYCLE,
)
