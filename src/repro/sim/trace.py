"""Lightweight tracing / probe hooks.

Components publish events ("packet dropped", "queue length changed", ...) to
a :class:`TraceBus`; metric collectors subscribe to the topics they care
about.  Publishing to a topic with no subscribers is a dict lookup and a
truth test, so tracing can stay compiled-in without slowing down large
simulations.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, DefaultDict, List

Subscriber = Callable[..., None]


class TraceBus:
    """Minimal publish/subscribe bus keyed by string topics."""

    def __init__(self) -> None:
        self._subscribers: DefaultDict[str, List[Subscriber]] = defaultdict(list)

    def subscribe(self, topic: str, callback: Subscriber) -> None:
        """Register ``callback`` to be invoked on every ``publish(topic)``."""
        self._subscribers[topic].append(callback)

    def unsubscribe(self, topic: str, callback: Subscriber) -> None:
        """Remove a previously registered callback (no-op if absent)."""
        callbacks = self._subscribers.get(topic)
        if callbacks and callback in callbacks:
            callbacks.remove(callback)

    def publish(self, topic: str, *args: Any, **kwargs: Any) -> None:
        """Invoke every subscriber of ``topic`` with the given payload."""
        callbacks = self._subscribers.get(topic)
        if callbacks:
            for callback in list(callbacks):
                callback(*args, **kwargs)

    def has_subscribers(self, topic: str) -> bool:
        """True if publishing to ``topic`` would call anyone."""
        return bool(self._subscribers.get(topic))


# Well-known topics used across the package.  Collectors import these
# constants instead of spelling the strings so typos fail loudly.
TOPIC_PACKET_DROP = "packet.drop"
TOPIC_PACKET_ENQUEUE = "packet.enqueue"
TOPIC_PACKET_DEQUEUE = "packet.dequeue"
TOPIC_PACKET_MARK = "packet.mark"
TOPIC_PACKET_DELIVERED = "packet.delivered"
TOPIC_FLOW_START = "flow.start"
TOPIC_FLOW_COMPLETE = "flow.complete"
TOPIC_THRESHOLD_CHANGE = "dynaq.threshold"
