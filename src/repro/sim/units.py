"""Time, size, and rate units for the simulator.

The simulator clock is an integer number of **nanoseconds**.  Integer time
keeps the event loop fully deterministic (no floating-point drift when many
events land at the same instant) and is fine-grained enough for 100 Gbps
links, where a 1500-byte frame occupies the wire for 120 ns.

Sizes are plain integers in **bytes** and rates are integers in **bits per
second**.  The helpers below exist so that experiment configuration reads
like the paper ("85 KB buffer", "1 Gbps link", "500 us RTT") instead of raw
exponents.
"""

from __future__ import annotations

# --- time (nanoseconds) -----------------------------------------------------

NANOSECOND = 1
MICROSECOND = 1_000
MILLISECOND = 1_000_000
SECOND = 1_000_000_000


def nanoseconds(value: float) -> int:
    """Convert a value in nanoseconds to integer simulator ticks."""
    return round(value)


def microseconds(value: float) -> int:
    """Convert a value in microseconds to integer simulator ticks."""
    return round(value * MICROSECOND)


def milliseconds(value: float) -> int:
    """Convert a value in milliseconds to integer simulator ticks."""
    return round(value * MILLISECOND)


def seconds(value: float) -> int:
    """Convert a value in seconds to integer simulator ticks."""
    return round(value * SECOND)


def to_seconds(ticks: int) -> float:
    """Convert integer simulator ticks back to float seconds."""
    return ticks / SECOND


# --- sizes (bytes) ----------------------------------------------------------

BYTE = 1
KILOBYTE = 1_000
MEGABYTE = 1_000_000
GIGABYTE = 1_000_000_000

# Binary sizes appear when emulating switch ASIC buffers (e.g. "85KB" port
# buffers on the Broadcom 56538 are kibibyte-granular SRAM slices); we follow
# the paper's decimal reading for simplicity but expose both.
KIBIBYTE = 1_024
MEBIBYTE = 1_048_576


def kilobytes(value: float) -> int:
    """Convert kilobytes (decimal) to bytes."""
    return round(value * KILOBYTE)


def megabytes(value: float) -> int:
    """Convert megabytes (decimal) to bytes."""
    return round(value * MEGABYTE)


# --- rates (bits per second) ------------------------------------------------

KILOBIT_PER_SECOND = 1_000
MEGABIT_PER_SECOND = 1_000_000
GIGABIT_PER_SECOND = 1_000_000_000


def gbps(value: float) -> int:
    """Convert gigabits per second to bits per second."""
    return round(value * GIGABIT_PER_SECOND)


def mbps(value: float) -> int:
    """Convert megabits per second to bits per second."""
    return round(value * MEGABIT_PER_SECOND)


def transmission_time(size_bytes: int, rate_bps: int) -> int:
    """Wire time of ``size_bytes`` at ``rate_bps``, in integer nanoseconds.

    Rounds up so that a transmission never finishes "early"; this keeps link
    utilisation accounting conservative and deterministic.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    bits = size_bytes * 8
    return -(-bits * SECOND // rate_bps)  # ceil division


def bandwidth_delay_product(rate_bps: int, rtt_ns: int) -> int:
    """Bandwidth-delay product in bytes: ``C * RTT`` (paper's BDP)."""
    return rate_bps * rtt_ns // (8 * SECOND)
