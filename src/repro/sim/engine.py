"""Deterministic discrete-event simulation kernel.

The kernel is deliberately small: a binary heap of :class:`Event` objects
ordered by ``(time, sequence)``.  The sequence number makes execution order
fully deterministic when several events share a timestamp (FIFO within a
tick), which in turn makes every experiment in this repository exactly
reproducible for a given seed.

Events carry a plain callback instead of coroutine processes; for a
packet-level simulator this is both faster and easier to reason about than a
process-based kernel like simpy (which is not available offline anyway).
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, List, Optional

from .errors import SimulationError


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` / :meth:`.at` and
    can be cancelled with :meth:`Simulator.cancel`.  Cancellation is lazy:
    the heap entry stays put and is skipped when popped.  Executed events
    are marked ``cancelled`` too (they are dead either way), which makes
    cancelling an already-fired event a harmless no-op and keeps the
    simulator's live-event counter exact.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: int, seq: int,
                 callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = " dead" if self.cancelled else ""
        return f"<Event t={self.time} #{self.seq} {name}{state}>"


class Simulator:
    """Event loop with an integer-nanosecond clock.

    Typical use::

        sim = Simulator()
        sim.schedule(1_000, handler, arg1, arg2)   # 1 us from now
        sim.run(until=units.seconds(10))

    Setting :attr:`profiler` (see :class:`repro.telemetry.RunProfiler`)
    makes the loop time every callback; the attribute is ``None`` by
    default and costs one local truth test per event when unset.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[Event] = []
        self._seq: int = 0
        self._live: int = 0
        self._running = False
        self._stopped = False
        self.events_executed: int = 0
        self.events_cancelled: int = 0
        self.profiler = None  # duck-typed: record(callback, elapsed_s, heap_len)

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay: int, callback: Callable[..., None],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay={delay})")
        return self.at(self.now + delay, callback, *args)

    def at(self, time: int, callback: Callable[..., None],
           *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} < now={self.now}")
        event = Event(time, self._seq, callback, args)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a pending event.  Cancelling ``None``, a finished event,
        or an already-cancelled event is a harmless no-op so callers can
        cancel unconditionally."""
        if event is not None and not event.cancelled:
            event.cancelled = True
            self._live -= 1
            self.events_cancelled += 1

    # -- execution -----------------------------------------------------------

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> None:
        """Run until the heap drains, ``until`` is reached, or ``stop()``.

        ``until`` is inclusive: events scheduled exactly at ``until`` run.
        ``max_events`` bounds total callbacks executed in this call — a
        safety valve for property tests and runaway configurations.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        self._stopped = False
        executed = 0
        heap = self._heap
        profiler = self.profiler
        try:
            while heap:
                event = heap[0]
                if event.cancelled:
                    self._compact_head()
                    continue
                if until is not None and event.time > until:
                    self.now = until
                    break
                heapq.heappop(heap)
                event.cancelled = True  # consumed; see Event docstring
                self._live -= 1
                self.now = event.time
                if profiler is None:
                    event.callback(*event.args)
                else:
                    start = perf_counter()
                    event.callback(*event.args)
                    profiler.record(event.callback, perf_counter() - start,
                                    len(heap))
                self.events_executed += 1
                executed += 1
                if self._stopped:
                    break
                if max_events is not None and executed >= max_events:
                    break
            else:
                if until is not None and self.now < until:
                    self.now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop the loop after the currently executing callback returns."""
        self._stopped = True

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled (the sequence counter)."""
        return self._seq

    def pending(self) -> int:
        """Number of live (non-cancelled) events still in the heap.

        O(1): maintained incrementally on schedule / cancel / execute.
        """
        return self._live

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next live event, or ``None`` if idle."""
        self._compact_head()
        return self._heap[0].time if self._heap else None

    # -- internals -----------------------------------------------------------

    def _compact_head(self) -> None:
        """Pop dead (cancelled/consumed) events off the heap head."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
