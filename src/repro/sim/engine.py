"""Deterministic discrete-event simulation kernel.

The kernel is deliberately small: a binary heap of :class:`Event` objects
ordered by ``(time, sequence)``.  The sequence number makes execution order
fully deterministic when several events share a timestamp (FIFO within a
tick), which in turn makes every experiment in this repository exactly
reproducible for a given seed.

Events carry a plain callback instead of coroutine processes; for a
packet-level simulator this is both faster and easier to reason about than a
process-based kernel like simpy (which is not available offline anyway).

Event pooling
-------------

With :attr:`repro.perf.config.PerfConfig.event_pooling` on (the default)
the simulator recycles executed/dead events through a free list instead of
allocating a fresh :class:`Event` per schedule — at packet rates the event
allocator is one of the hottest sites in the whole simulator.  Recycling is
observable to code that *retains* an event handle after it fired, so every
event carries a **generation counter** (:attr:`Event.gen`):

* the counter is bumped every time the pool re-issues the object;
* :meth:`Simulator.cancel` on a handle whose event already executed is
  still a no-op *until* the object is re-issued — after that the handle
  refers to a different logical event, and a raw ``cancel`` would kill an
  innocent bystander;
* callers that keep handles across time therefore snapshot ``event.gen``
  at schedule time and cancel through
  :meth:`Simulator.cancel_versioned`, which no-ops on a stale generation
  (see :meth:`repro.net.port.EgressPort._track_in_flight` for the
  pattern).

Handles that are cleared inside their own callback (RTO timers, delayed
ACK timers, the watchdog) never observe a recycled object and need no
versioning.  ``tests/test_perf_pooling.py`` locks these rules in.

Calendar queue
--------------

With :attr:`repro.perf.config.PerfConfig.calendar_queue` on (the default)
a simulator whose pending-event population crosses a warmup threshold
swaps the binary heap for a :class:`CalendarQueue`: fixed-width time
buckets (width sized from the observed inter-event spacing at engagement)
scanned with a lazily rotating day pointer, plus an overflow heap for
far-future events.  Each bucket is itself a tiny heap of the same
``(time, seq, event)`` triples the pooled binary heap stores, so ordering
— and therefore every trace byte — is identical to the heap path; dead
(cancelled) entries ride along and are skipped on pop exactly as the heap
does it.  Small simulations never cross the threshold and keep the plain
heap, paying only one pointer test per schedule.
"""

from __future__ import annotations

import heapq
import os
from time import perf_counter
from typing import Any, Callable, Iterator, List, Optional, Tuple

from ..perf.config import active_config
from .errors import SimulationError

#: Free-list size cap: enough to absorb the steady-state event population
#: of the largest experiments while bounding worst-case retained memory.
EVENT_POOL_CAP = 8192

#: Pending-event count at which a calendar-enabled simulator swaps its
#: binary heap for the calendar queue.  Below this a heap is faster (and
#: the bench microworkloads deliberately stay below it, so the calendar
#: engages only under genuine event density).  ``REPRO_CALENDAR_WARMUP``
#: overrides it process-wide, which is how CI forces engagement on
#: workloads that would otherwise stay dormant.
CALENDAR_WARMUP = 128

#: Bucket count for the calendar queue (one "year" spans
#: ``CALENDAR_NBUCKETS * width`` nanoseconds).
CALENDAR_NBUCKETS = 512

#: Engagement-trigger sentinel: a pending-event count no real heap ever
#: reaches, used as the threshold when the calendar is disabled or
#: already engaged so the schedule hot path pays one int compare only.
_CAL_OFF = 1 << 62


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` / :meth:`.at` and
    can be cancelled with :meth:`Simulator.cancel`.  Cancellation is lazy:
    the heap entry stays put and is skipped when popped.  Executed events
    are marked ``cancelled`` too (they are dead either way), which makes
    cancelling an already-fired event a harmless no-op and keeps the
    simulator's live-event counter exact.

    ``gen`` is the pooling generation counter: it changes whenever the
    simulator re-issues this object for a new logical event, so a caller
    holding ``(event, gen)`` can tell a recycled object from the event it
    scheduled (see the module docstring).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "gen")

    def __init__(self, time: int, seq: int,
                 callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.gen = 0

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = " dead" if self.cancelled else ""
        return f"<Event t={self.time} #{self.seq} g{self.gen} {name}{state}>"


class CalendarQueue:
    """Bucketed priority queue over ``(time, seq, event)`` triples.

    The classic calendar-queue structure specialised for this kernel:

    * ``nbuckets`` fixed-width buckets; an entry at time ``t`` lives in
      bucket ``(t // width) % nbuckets``;
    * a single-year invariant — every bucketed entry satisfies
      ``day_start <= t < limit`` with ``limit - day_start <= nbuckets *
      width`` — so scanning buckets from the ``day`` pointer visits
      strictly increasing time windows and the first non-empty bucket's
      heap head is the global minimum;
    * entries at or past ``limit`` wait in an ``overflow`` heap and
      migrate into the buckets when the bucketed population drains;
    * a push *before* ``day_start`` (rare: only cancel/requeue patterns
      produce it) rewinds the day pointer and, if the span would exceed
      one year, shrinks ``limit`` and evicts now-out-of-window entries to
      the overflow heap, preserving the invariant.

    Each bucket is a plain ``heapq`` list, so within a bucket — and hence
    globally — ordering is exactly the ``(time, seq)`` order the binary
    heap produces.  Dead (cancelled) entries are popped lazily by the
    caller, as with the heap.  All state is plain lists/ints, so pickling
    a mid-run simulator (the snapshot layer) round-trips it unchanged.
    """

    __slots__ = ("width", "nbuckets", "buckets", "count", "overflow",
                 "day", "day_start", "limit")

    def __init__(self, width: int, nbuckets: int, start: int) -> None:
        self.width = width
        self.nbuckets = nbuckets
        self.buckets: List[List[tuple]] = [[] for _ in range(nbuckets)]
        self.count = 0          # entries currently in buckets
        self.overflow: List[tuple] = []
        window = start // width
        self.day = window % nbuckets
        self.day_start = window * width
        self.limit = self.day_start + nbuckets * width

    def __len__(self) -> int:
        return self.count + len(self.overflow)

    def push(self, entry: tuple) -> None:
        t = entry[0]
        if t >= self.limit:
            heapq.heappush(self.overflow, entry)
            return
        if t < self.day_start:
            self._rewind(t)
        heapq.heappush(self.buckets[(t // self.width) % self.nbuckets],
                       entry)
        self.count += 1

    def _rewind(self, t: int) -> None:
        """Move the day pointer back to cover ``t``; shrink the year if
        the span would otherwise exceed ``nbuckets * width``."""
        window = t // self.width
        new_start = window * self.width
        new_limit = new_start + self.nbuckets * self.width
        if new_limit < self.limit:
            if self.count:
                for bucket in self.buckets:
                    if not bucket:
                        continue
                    evict = [e for e in bucket if e[0] >= new_limit]
                    if evict:
                        keep = [e for e in bucket if e[0] < new_limit]
                        heapq.heapify(keep)
                        bucket[:] = keep
                        for e in evict:
                            heapq.heappush(self.overflow, e)
                        self.count -= len(evict)
            self.limit = new_limit
        self.day = window % self.nbuckets
        self.day_start = new_start

    def _migrate(self) -> None:
        """Re-anchor the year at the earliest overflow entry and pull
        every overflow entry inside the new year into the buckets.  Only
        called when the buckets are empty."""
        overflow = self.overflow
        width = self.width
        nbuckets = self.nbuckets
        window = overflow[0][0] // width
        self.day = window % nbuckets
        self.day_start = window * width
        self.limit = limit = self.day_start + nbuckets * width
        buckets = self.buckets
        moved = 0
        while overflow and overflow[0][0] < limit:
            entry = heapq.heappop(overflow)
            heapq.heappush(buckets[(entry[0] // width) % nbuckets], entry)
            moved += 1
        self.count = moved

    def head(self) -> Optional[tuple]:
        """The minimum entry without removing it, or ``None`` if empty.
        Positions the day pointer on the head's bucket, so a following
        :meth:`pop` is O(log bucket size)."""
        if not self.count:
            if not self.overflow:
                return None
            self._migrate()
        buckets = self.buckets
        day = self.day
        start = self.day_start
        width = self.width
        nbuckets = self.nbuckets
        while True:
            bucket = buckets[day]
            if bucket:
                self.day = day
                self.day_start = start
                return bucket[0]
            day += 1
            if day == nbuckets:
                day = 0
            start += width

    def pop(self) -> tuple:
        """Remove and return the minimum entry.  Only valid immediately
        after :meth:`head` returned non-``None`` (which positioned the
        day pointer)."""
        entry = heapq.heappop(self.buckets[self.day])
        self.count -= 1
        return entry

    def entries(self) -> Iterator[tuple]:
        """Every stored triple, in no particular order (dead included)."""
        for bucket in self.buckets:
            yield from bucket
        yield from self.overflow


class Simulator:
    """Event loop with an integer-nanosecond clock.

    Typical use::

        sim = Simulator()
        sim.schedule(1_000, handler, arg1, arg2)   # 1 us from now
        sim.run(until=units.seconds(10))

    Setting :attr:`profiler` (see :class:`repro.telemetry.RunProfiler`)
    makes the loop time every callback; the attribute is ``None`` by
    default and costs one local truth test per event when unset.

    ``pooling`` selects event recycling explicitly; ``calendar`` selects
    the calendar-queue scheduler (with ``calendar_warmup`` the pending
    count at which it engages).  Both default to
    :func:`repro.perf.config.active_config` at construction time.
    """

    def __init__(self, *, pooling: Optional[bool] = None,
                 calendar: Optional[bool] = None,
                 calendar_warmup: Optional[int] = None) -> None:
        self.now: int = 0
        # Heap layout is fixed at construction: pooled or calendar-enabled
        # simulators store (time, seq, event) triples so ordering compares
        # plain ints in C; the reference path stores bare Events ordered
        # by Event.__lt__, as the pre-optimisation engine did.  seq
        # uniqueness guarantees triple comparison never falls through to
        # the Event object.
        self._heap: List[Any] = []
        self._seq: int = 0
        self._live: int = 0
        self._running = False
        self._stopped = False
        self.events_executed: int = 0
        self.events_cancelled: int = 0
        self.events_reused: int = 0
        self.profiler = None  # duck-typed: record(callback, elapsed_s, heap_len)
        cfg = None
        if pooling is None:
            cfg = active_config()
            pooling = cfg.event_pooling
        self.pooling = pooling
        if calendar is None:
            calendar = (cfg or active_config()).calendar_queue
        if calendar_warmup is None:
            calendar_warmup = int(os.environ.get("REPRO_CALENDAR_WARMUP",
                                                 CALENDAR_WARMUP))
        self._cal_warmup = calendar_warmup
        self._cal: Optional[CalendarQueue] = None
        self._cal_pending = calendar
        # Fused engagement trigger: one int compare on the schedule hot
        # path instead of a flag test plus a threshold read.  _CAL_OFF
        # (unreachable) means "never engage" — calendar disabled or
        # already engaged.
        self._cal_trigger = calendar_warmup if calendar else _CAL_OFF
        self._triples = pooling or calendar
        # The inclusive horizon of the run() call in progress (None when
        # idle or unbounded) — read by batched-advance code that must not
        # commit state past the point where the clock will stop.
        self._run_until: Optional[int] = None
        self._free: List[Event] = []
        if calendar and calendar_warmup <= 0:
            self._engage_calendar()

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay: int, callback: Callable[..., None],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay={delay})")
        if not self.pooling:
            return self.at(self.now + delay, callback, *args)
        # Pooled fast path, inlined: schedule() is called once or twice
        # per packet, so the extra at() call frame is measurable.  The
        # at() time check is redundant here (delay >= 0 implies
        # time >= now).
        time = self.now + delay
        seq = self._seq
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.seq = seq
            event.callback = callback
            event.args = args
            event.cancelled = False
            event.gen += 1
            self.events_reused += 1
        else:
            event = Event(time, seq, callback, args)
        self._seq = seq + 1
        self._live += 1
        cal = self._cal
        if cal is not None:
            cal.push((time, seq, event))
        else:
            heap = self._heap
            heapq.heappush(heap, (time, seq, event))
            if len(heap) >= self._cal_trigger:
                self._engage_calendar()
        return event

    def at(self, time: int, callback: Callable[..., None],
           *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} < now={self.now}")
        seq = self._seq
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.seq = seq
            event.callback = callback
            event.args = args
            event.cancelled = False
            event.gen += 1
            self.events_reused += 1
        else:
            event = Event(time, seq, callback, args)
        self._seq = seq + 1
        self._live += 1
        cal = self._cal
        if cal is not None:
            cal.push((time, seq, event))
        elif self._triples:
            heap = self._heap
            heapq.heappush(heap, (time, seq, event))
            if len(heap) >= self._cal_trigger:
                self._engage_calendar()
        else:
            heapq.heappush(self._heap, event)
        return event

    def at_many(self, times: List[int], callback: Callable[..., None],
                items: List[Any]) -> List[Event]:
        """Bulk :meth:`at`: schedule ``callback(item)`` at each
        ``times[i]`` and return the events in order.

        The batched-link-advance path schedules a whole batch's delivery
        events in one call, amortising the per-event frame and pool/heap
        attribute traffic.  Caller guarantees every time is ``>= now``
        (departure times of transmissions starting now or later), so the
        past-check is hoisted to the first entry only.
        """
        if times and times[0] < self.now:
            raise SimulationError(
                f"cannot schedule at t={times[0]} < now={self.now}")
        events: List[Event] = []
        append = events.append
        free = self._free
        pop = free.pop
        seq = self._seq
        cal = self._cal
        triples = self._triples
        heap = self._heap
        push = heapq.heappush
        reused = 0
        for i, time in enumerate(times):
            if free:
                event = pop()
                event.time = time
                event.seq = seq
                event.callback = callback
                event.args = (items[i],)
                event.cancelled = False
                event.gen += 1
                reused += 1
            else:
                event = Event(time, seq, callback, (items[i],))
            if cal is not None:
                cal.push((time, seq, event))
            elif triples:
                push(heap, (time, seq, event))
            else:
                push(heap, event)
            seq += 1
            append(event)
        self._seq = seq
        self._live += len(events)
        self.events_reused += reused
        if cal is None and len(heap) >= self._cal_trigger:
            self._engage_calendar()
        return events

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a pending event.  Cancelling ``None``, a finished event,
        or an already-cancelled event is a harmless no-op so callers can
        cancel unconditionally.

        With event pooling on, a handle retained *after* its event fired
        may meanwhile refer to a recycled object; such callers must use
        :meth:`cancel_versioned` with the generation snapshotted at
        schedule time instead.
        """
        if event is not None and not event.cancelled:
            event.cancelled = True
            self._live -= 1
            self.events_cancelled += 1

    def cancel_versioned(self, event: Optional[Event], gen: int) -> None:
        """Cancel ``event`` only if it still is generation ``gen``.

        The pooling-safe cancel for retained handles: a no-op when the
        object has been re-issued for a different logical event (its
        ``gen`` moved on) or is already dead.
        """
        if event is not None and event.gen == gen and not event.cancelled:
            event.cancelled = True
            self._live -= 1
            self.events_cancelled += 1

    # -- execution -----------------------------------------------------------

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> None:
        """Run until the heap drains, ``until`` is reached, or ``stop()``.

        ``until`` is inclusive: events scheduled exactly at ``until`` run.
        ``max_events`` bounds total callbacks executed in this call — a
        safety valve for property tests and runaway configurations.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        self._stopped = False
        self._run_until = until
        try:
            if (self.pooling and self.profiler is None
                    and max_events is None):
                self._run_pooled(until)
            else:
                self._run_general(until, max_events)
        finally:
            self._run_until = None
            self._running = False

    def _run_pooled(self, until: Optional[int]) -> None:
        """Dispatcher for the common pooled case (no profiler, no
        ``max_events``): alternate the heap and calendar drain loops so a
        calendar that engages *mid-run* (a callback pushed the pending
        count over the warmup threshold) is picked up without missing a
        beat."""
        while True:
            if self._cal is not None:
                self._drain_cal_pooled(until)
                return
            if self._drain_heap_pooled(until):
                return

    def _drain_heap_pooled(self, until: Optional[int]) -> bool:
        """Tight heap run loop.  Byte-for-byte the same semantics as the
        general loop — same ordering, same clock behaviour, same counters —
        with the per-event release inlined and the optional checks hoisted
        out of the hot loop.  Returns ``True`` when the run is finished,
        ``False`` when the calendar engaged mid-drain and the dispatcher
        must continue on it.

        ``until`` is compared with the explicit ``bounded`` flag rather
        than a ``float("inf")`` sentinel: event times are integers, and
        int→float comparison silently loses precision past 2**53 ns
        (~104 days of simulated time — reachable by long-horizon serve
        jobs), which could run events *beyond* the horizon.
        """
        heap = self._heap
        free = self._free
        pop = heapq.heappop
        bounded = until is not None
        executed = 0
        try:
            while heap:
                entry = heap[0]
                event = entry[2]
                if event.cancelled:
                    # Inline head compaction: dead entries are popped and
                    # their events recycled right here.
                    pop(heap)
                    if len(free) < EVENT_POOL_CAP:
                        event.callback = None
                        event.args = ()
                        free.append(event)
                    continue
                time = entry[0]
                if bounded and time > until:
                    self.now = until
                    return True
                pop(heap)
                event.cancelled = True  # consumed; see Event docstring
                self.now = time
                # Consumed before the callback runs: a raising callback
                # must still be accounted for in the deferred batch below,
                # or pending() would over-count after the exception and a
                # post-mortem snapshot would carry a corrupt live count.
                executed += 1
                try:
                    event.callback(*event.args)
                except BaseException:
                    # The event was consumed: recycle it even on the
                    # error path so pool accounting cannot drift.
                    if len(free) < EVENT_POOL_CAP:
                        event.callback = None
                        event.args = ()
                        free.append(event)
                    raise
                if len(free) < EVENT_POOL_CAP:
                    event.callback = None
                    event.args = ()
                    free.append(event)
                if self._stopped:
                    return True
            # Mid-drain engagement empties the heap in place, so the
            # while condition falls out naturally — one check here
            # replaces a per-event check inside the hot loop.
            if self._cal is not None:
                return False
            if bounded and self.now < until:
                self.now = until
            return True
        finally:
            # Executed events leave the live set in one batch.  Safe to
            # defer: consumed events are marked cancelled before their
            # callback runs, so a cancel() from inside a callback cannot
            # double-count them, and pending() is exact again the moment
            # run() returns.
            self.events_executed += executed
            self._live -= executed

    def _drain_cal_pooled(self, until: Optional[int]) -> None:
        """Calendar twin of :meth:`_drain_heap_pooled`.  A calendar never
        disengages, so no switch check is needed inside the loop."""
        cal = self._cal
        free = self._free
        bounded = until is not None
        executed = 0
        try:
            while True:
                entry = cal.head()
                if entry is None:
                    if bounded and self.now < until:
                        self.now = until
                    return
                event = entry[2]
                if event.cancelled:
                    cal.pop()
                    if len(free) < EVENT_POOL_CAP:
                        event.callback = None
                        event.args = ()
                        free.append(event)
                    continue
                time = entry[0]
                if bounded and time > until:
                    self.now = until
                    return
                cal.pop()
                event.cancelled = True  # consumed; see Event docstring
                self.now = time
                executed += 1
                try:
                    event.callback(*event.args)
                except BaseException:
                    if len(free) < EVENT_POOL_CAP:
                        event.callback = None
                        event.args = ()
                        free.append(event)
                    raise
                if len(free) < EVENT_POOL_CAP:
                    event.callback = None
                    event.args = ()
                    free.append(event)
                if self._stopped:
                    return
        finally:
            self.events_executed += executed
            self._live -= executed

    def _run_general(self, until: Optional[int],
                     max_events: Optional[int]) -> None:
        """The general loop: any heap layout, optional profiler and
        ``max_events``, calendar engagement mid-run."""
        heap = self._heap
        profiler = self.profiler
        pooling = self.pooling
        triples = self._triples
        executed = 0
        while True:
            cal = self._cal
            if cal is not None:
                entry = cal.head()
                if entry is None:
                    if until is not None and self.now < until:
                        self.now = until
                    break
                event = entry[2]
                if event.cancelled:
                    cal.pop()
                    if pooling:
                        self._release(event)
                    continue
                if until is not None and event.time > until:
                    self.now = until
                    break
                cal.pop()
            else:
                if not heap:
                    if until is not None and self.now < until:
                        self.now = until
                    break
                event = heap[0][2] if triples else heap[0]
                if event.cancelled:
                    self._compact_head()
                    continue
                if until is not None and event.time > until:
                    self.now = until
                    break
                heapq.heappop(heap)
            event.cancelled = True  # consumed; see Event docstring
            self._live -= 1
            self.now = event.time
            # Count the event as executed *before* running its
            # callback: if the callback raises, the heap and the live
            # counter must still agree so a post-mortem snapshot of
            # the simulator is consistent (the event was consumed).
            self.events_executed += 1
            executed += 1
            try:
                if profiler is None:
                    event.callback(*event.args)
                else:
                    start = perf_counter()
                    event.callback(*event.args)
                    profiler.record(
                        event.callback, perf_counter() - start,
                        len(cal) if cal is not None else len(heap))
            except BaseException:
                # Consumed events are recycled even when their callback
                # raises, keeping pool_size() in lockstep with the pooled
                # loop's accounting.
                if pooling:
                    self._release(event)
                raise
            if pooling:
                self._release(event)
            if self._stopped:
                break
            if max_events is not None and executed >= max_events:
                break

    def stop(self) -> None:
        """Stop the loop after the currently executing callback returns."""
        self._stopped = True

    def credit_events(self, n: int) -> None:
        """Fold ``n`` logical events into :attr:`events_executed`.

        Used by batching fast paths (see
        :attr:`repro.perf.config.PerfConfig.batched_link_advance`) that
        coalesce N would-be events into one: the suppressed N-1 are
        credited so operation counters stay equal to the per-event path's.
        """
        self.events_executed += n

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled (the sequence counter)."""
        return self._seq

    def pending(self) -> int:
        """Number of live (non-cancelled) events still in the heap.

        O(1): maintained incrementally on schedule / cancel / execute.
        """
        return self._live

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next live event, or ``None`` if idle."""
        self._compact_head()
        cal = self._cal
        if cal is not None:
            entry = cal.head()
            return None if entry is None else entry[0]
        if not self._heap:
            return None
        return self._heap[0][0] if self._triples else self._heap[0].time

    def pool_size(self) -> int:
        """Events currently parked in the free list."""
        return len(self._free)

    def audit_counters(self) -> List[str]:
        """Cold-path sanity audit of the operation counters.

        Returns problem descriptions (empty = sane): the live-event
        count stays non-negative, the free list is bounded by
        ``EVENT_POOL_CAP``, and the heap never holds *more* live events
        than :meth:`pending` reports.  Unlike :meth:`check_consistency`
        this audit is safe to run from inside an event callback: the
        pooled drain loops batch their ``_live`` decrement until
        :meth:`run` returns, so mid-run the counter may exceed the heap
        count (never the reverse).  ``events_executed`` may likewise
        exceed ``events_scheduled`` — batching fast paths credit
        suppressed events without consuming sequence numbers — so the
        counters are not compared against each other.  Used by the soak
        invariant engine on its check cadence, never by the datapath.
        """
        problems: List[str] = []
        if self.pending() < 0:
            problems.append(f"negative live-event count {self.pending()}")
        if self.pool_size() > EVENT_POOL_CAP:
            problems.append(
                f"free list holds {self.pool_size()} events, cap is "
                f"{EVENT_POOL_CAP}")
        alive = self._alive_count()
        if alive > self._live:
            problems.append(
                f"heap/counter mismatch: {alive} live events in heap "
                f"but pending() reports {self._live}")
        return problems

    def pending_events_for(self, callback: Callable[..., None]) -> List[Event]:
        """Live scheduled events whose callback is ``callback`` (by
        identity), in execution order.

        O(heap size); meant for *rare* control paths that trade away
        per-occurrence bookkeeping — a link-down fault collecting the
        deliveries still on the wire (see
        :attr:`repro.perf.config.PerfConfig.heap_scan_inflight`) — never
        for per-packet logic.
        """
        cal = self._cal
        if cal is not None:
            hits = [entry[2] for entry in cal.entries()
                    if not entry[2].cancelled
                    and entry[2].callback is callback]
        elif self._triples:
            hits = [entry[2] for entry in self._heap
                    if not entry[2].cancelled
                    and entry[2].callback is callback]
        else:
            hits = [event for event in self._heap
                    if not event.cancelled and event.callback is callback]
        hits.sort()  # Event.__lt__: (time, seq) == schedule order here
        return hits

    def _alive_count(self) -> int:
        """Count live (non-cancelled) events actually present in the
        heap / calendar.  O(heap size) — cold paths only."""
        cal = self._cal
        if cal is not None:
            alive = sum(1 for entry in cal.entries()
                        if not entry[2].cancelled)
            alive += sum(1 for entry in self._heap
                         if not entry[2].cancelled)
        elif self._triples:
            alive = sum(1 for entry in self._heap if not entry[2].cancelled)
        else:
            alive = sum(1 for event in self._heap if not event.cancelled)
        return alive

    def check_consistency(self) -> None:
        """Verify the heap and the live counter agree.

        Raises :class:`SimulationError` on a mismatch.  O(heap size), so
        this is for rare control paths only — the snapshot layer calls it
        before pickling a post-mortem world to guarantee the saved state
        is resumable, even after an exception escaped a callback.  Only
        exact *between* :meth:`run` calls: the pooled drains defer their
        live-counter decrement, so mid-run use :meth:`audit_counters`.
        """
        alive = self._alive_count()
        if alive != self._live:
            raise SimulationError(
                f"heap/counter mismatch: {alive} live events in heap but "
                f"pending() reports {self._live}")

    # -- internals -----------------------------------------------------------

    def _engage_calendar(self) -> None:
        """Swap the binary heap for a calendar queue, sizing the bucket
        width from the median gap between the pending events' timestamps
        (robust against a single far-future watchdog stretching the
        span).  Moves every heap entry — dead ones included — so ordering
        and lazy-cancellation behaviour are unchanged."""
        self._cal_pending = False
        self._cal_trigger = _CAL_OFF
        heap = self._heap
        if len(heap) >= 2:
            times = sorted(entry[0] for entry in heap)
            gaps = sorted(b - a for a, b in zip(times, times[1:]) if b > a)
            width = gaps[len(gaps) // 2] if gaps else 1
        else:
            width = 1024
        cal = CalendarQueue(width, CALENDAR_NBUCKETS, self.now)
        push = cal.push
        for entry in heap:
            push(entry)
        # Empty in place: a drain loop holding a reference to this list
        # sees it empty, falls out, and the dispatcher continues on the
        # calendar.
        del heap[:]
        self._cal = cal

    def _compact_head(self) -> None:
        """Pop dead (cancelled/consumed) events off the heap head."""
        pooling = self.pooling
        cal = self._cal
        if cal is not None:
            while True:
                entry = cal.head()
                if entry is None or not entry[2].cancelled:
                    return
                cal.pop()
                if pooling:
                    self._release(entry[2])
        heap = self._heap
        triples = self._triples
        while heap:
            event = heap[0][2] if triples else heap[0]
            if not event.cancelled:
                break
            heapq.heappop(heap)
            if pooling:
                self._release(event)

    def _release(self, event: Event) -> None:
        """Park a dead event in the free list (drops payload references)."""
        if len(self._free) < EVENT_POOL_CAP:
            event.callback = None
            event.args = ()
            self._free.append(event)
