"""Deterministic discrete-event simulation kernel.

The kernel is deliberately small: a binary heap of :class:`Event` objects
ordered by ``(time, sequence)``.  The sequence number makes execution order
fully deterministic when several events share a timestamp (FIFO within a
tick), which in turn makes every experiment in this repository exactly
reproducible for a given seed.

Events carry a plain callback instead of coroutine processes; for a
packet-level simulator this is both faster and easier to reason about than a
process-based kernel like simpy (which is not available offline anyway).

Event pooling
-------------

With :attr:`repro.perf.config.PerfConfig.event_pooling` on (the default)
the simulator recycles executed/dead events through a free list instead of
allocating a fresh :class:`Event` per schedule — at packet rates the event
allocator is one of the hottest sites in the whole simulator.  Recycling is
observable to code that *retains* an event handle after it fired, so every
event carries a **generation counter** (:attr:`Event.gen`):

* the counter is bumped every time the pool re-issues the object;
* :meth:`Simulator.cancel` on a handle whose event already executed is
  still a no-op *until* the object is re-issued — after that the handle
  refers to a different logical event, and a raw ``cancel`` would kill an
  innocent bystander;
* callers that keep handles across time therefore snapshot ``event.gen``
  at schedule time and cancel through
  :meth:`Simulator.cancel_versioned`, which no-ops on a stale generation
  (see :meth:`repro.net.port.EgressPort._track_in_flight` for the
  pattern).

Handles that are cleared inside their own callback (RTO timers, delayed
ACK timers, the watchdog) never observe a recycled object and need no
versioning.  ``tests/test_perf_pooling.py`` locks these rules in.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, List, Optional

from ..perf.config import active_config
from .errors import SimulationError

#: Free-list size cap: enough to absorb the steady-state event population
#: of the largest experiments while bounding worst-case retained memory.
EVENT_POOL_CAP = 8192


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` / :meth:`.at` and
    can be cancelled with :meth:`Simulator.cancel`.  Cancellation is lazy:
    the heap entry stays put and is skipped when popped.  Executed events
    are marked ``cancelled`` too (they are dead either way), which makes
    cancelling an already-fired event a harmless no-op and keeps the
    simulator's live-event counter exact.

    ``gen`` is the pooling generation counter: it changes whenever the
    simulator re-issues this object for a new logical event, so a caller
    holding ``(event, gen)`` can tell a recycled object from the event it
    scheduled (see the module docstring).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "gen")

    def __init__(self, time: int, seq: int,
                 callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.gen = 0

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = " dead" if self.cancelled else ""
        return f"<Event t={self.time} #{self.seq} g{self.gen} {name}{state}>"


class Simulator:
    """Event loop with an integer-nanosecond clock.

    Typical use::

        sim = Simulator()
        sim.schedule(1_000, handler, arg1, arg2)   # 1 us from now
        sim.run(until=units.seconds(10))

    Setting :attr:`profiler` (see :class:`repro.telemetry.RunProfiler`)
    makes the loop time every callback; the attribute is ``None`` by
    default and costs one local truth test per event when unset.

    ``pooling`` selects event recycling explicitly; the default follows
    :func:`repro.perf.config.active_config` at construction time.
    """

    def __init__(self, *, pooling: Optional[bool] = None) -> None:
        self.now: int = 0
        # Heap layout follows the pooling mode, fixed at construction:
        # pooled simulators store (time, seq, event) triples so ordering
        # compares plain ints in C; the reference path stores bare
        # Events ordered by Event.__lt__, as the pre-optimisation engine
        # did.  seq uniqueness guarantees triple comparison never falls
        # through to the Event object.
        self._heap: List[Any] = []
        self._seq: int = 0
        self._live: int = 0
        self._running = False
        self._stopped = False
        self.events_executed: int = 0
        self.events_cancelled: int = 0
        self.events_reused: int = 0
        self.profiler = None  # duck-typed: record(callback, elapsed_s, heap_len)
        if pooling is None:
            pooling = active_config().event_pooling
        self.pooling = pooling
        self._free: List[Event] = []

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay: int, callback: Callable[..., None],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay={delay})")
        if not self.pooling:
            return self.at(self.now + delay, callback, *args)
        # Pooled fast path, inlined: schedule() is called once or twice
        # per packet, so the extra at() call frame is measurable.  The
        # at() time check is redundant here (delay >= 0 implies
        # time >= now).
        time = self.now + delay
        seq = self._seq
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.seq = seq
            event.callback = callback
            event.args = args
            event.cancelled = False
            event.gen += 1
            self.events_reused += 1
        else:
            event = Event(time, seq, callback, args)
        self._seq = seq + 1
        self._live += 1
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def at(self, time: int, callback: Callable[..., None],
           *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} < now={self.now}")
        seq = self._seq
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.seq = seq
            event.callback = callback
            event.args = args
            event.cancelled = False
            event.gen += 1
            self.events_reused += 1
        else:
            event = Event(time, seq, callback, args)
        self._seq = seq + 1
        self._live += 1
        if self.pooling:
            heapq.heappush(self._heap, (time, seq, event))
        else:
            heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a pending event.  Cancelling ``None``, a finished event,
        or an already-cancelled event is a harmless no-op so callers can
        cancel unconditionally.

        With event pooling on, a handle retained *after* its event fired
        may meanwhile refer to a recycled object; such callers must use
        :meth:`cancel_versioned` with the generation snapshotted at
        schedule time instead.
        """
        if event is not None and not event.cancelled:
            event.cancelled = True
            self._live -= 1
            self.events_cancelled += 1

    def cancel_versioned(self, event: Optional[Event], gen: int) -> None:
        """Cancel ``event`` only if it still is generation ``gen``.

        The pooling-safe cancel for retained handles: a no-op when the
        object has been re-issued for a different logical event (its
        ``gen`` moved on) or is already dead.
        """
        if event is not None and event.gen == gen and not event.cancelled:
            event.cancelled = True
            self._live -= 1
            self.events_cancelled += 1

    # -- execution -----------------------------------------------------------

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> None:
        """Run until the heap drains, ``until`` is reached, or ``stop()``.

        ``until`` is inclusive: events scheduled exactly at ``until`` run.
        ``max_events`` bounds total callbacks executed in this call — a
        safety valve for property tests and runaway configurations.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        self._stopped = False
        executed = 0
        heap = self._heap
        profiler = self.profiler
        pooling = self.pooling
        try:
            if pooling and profiler is None and max_events is None:
                self._run_pooled(until)
                return
            while heap:
                event = heap[0][2] if pooling else heap[0]
                if event.cancelled:
                    self._compact_head()
                    continue
                if until is not None and event.time > until:
                    self.now = until
                    break
                heapq.heappop(heap)
                event.cancelled = True  # consumed; see Event docstring
                self._live -= 1
                self.now = event.time
                # Count the event as executed *before* running its
                # callback: if the callback raises, the heap and the live
                # counter must still agree so a post-mortem snapshot of
                # the simulator is consistent (the event was consumed).
                self.events_executed += 1
                executed += 1
                if profiler is None:
                    event.callback(*event.args)
                else:
                    start = perf_counter()
                    event.callback(*event.args)
                    profiler.record(event.callback, perf_counter() - start,
                                    len(heap))
                if pooling:
                    self._release(event)
                if self._stopped:
                    break
                if max_events is not None and executed >= max_events:
                    break
            else:
                if until is not None and self.now < until:
                    self.now = until
        finally:
            self._running = False

    def _run_pooled(self, until: Optional[int]) -> None:
        """Tight run loop for the common pooled case (no profiler, no
        ``max_events``).  Byte-for-byte the same semantics as the general
        loop below — same ordering, same clock behaviour, same counters —
        with the per-event release inlined and the optional checks hoisted
        out of the hot loop.
        """
        heap = self._heap
        free = self._free
        pop = heapq.heappop
        horizon = until if until is not None else float("inf")
        executed = 0
        try:
            while heap:
                entry = heap[0]
                event = entry[2]
                if event.cancelled:
                    # Inline head compaction: dead entries are popped and
                    # their events recycled right here.
                    pop(heap)
                    if len(free) < EVENT_POOL_CAP:
                        event.callback = None
                        event.args = ()
                        free.append(event)
                    continue
                time = entry[0]
                if time > horizon:
                    self.now = until
                    break
                pop(heap)
                event.cancelled = True  # consumed; see Event docstring
                self.now = time
                # Consumed before the callback runs: a raising callback
                # must still be accounted for in the deferred batch below,
                # or pending() would over-count after the exception and a
                # post-mortem snapshot would carry a corrupt live count.
                executed += 1
                event.callback(*event.args)
                if len(free) < EVENT_POOL_CAP:
                    event.callback = None
                    event.args = ()
                    free.append(event)
                if self._stopped:
                    break
            else:
                if until is not None and self.now < until:
                    self.now = until
        finally:
            # Executed events leave the live set in one batch.  Safe to
            # defer: consumed events are marked cancelled before their
            # callback runs, so a cancel() from inside a callback cannot
            # double-count them, and pending() is exact again the moment
            # run() returns.
            self.events_executed += executed
            self._live -= executed

    def stop(self) -> None:
        """Stop the loop after the currently executing callback returns."""
        self._stopped = True

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled (the sequence counter)."""
        return self._seq

    def pending(self) -> int:
        """Number of live (non-cancelled) events still in the heap.

        O(1): maintained incrementally on schedule / cancel / execute.
        """
        return self._live

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next live event, or ``None`` if idle."""
        self._compact_head()
        if not self._heap:
            return None
        return self._heap[0][0] if self.pooling else self._heap[0].time

    def pool_size(self) -> int:
        """Events currently parked in the free list."""
        return len(self._free)

    def pending_events_for(self, callback: Callable[..., None]) -> List[Event]:
        """Live scheduled events whose callback is ``callback`` (by
        identity), in execution order.

        O(heap size); meant for *rare* control paths that trade away
        per-occurrence bookkeeping — a link-down fault collecting the
        deliveries still on the wire (see
        :attr:`repro.perf.config.PerfConfig.heap_scan_inflight`) — never
        for per-packet logic.
        """
        if self.pooling:
            hits = [entry[2] for entry in self._heap
                    if not entry[2].cancelled
                    and entry[2].callback is callback]
        else:
            hits = [event for event in self._heap
                    if not event.cancelled and event.callback is callback]
        hits.sort()  # Event.__lt__: (time, seq) == schedule order here
        return hits

    def check_consistency(self) -> None:
        """Verify the heap and the live counter agree.

        Raises :class:`SimulationError` on a mismatch.  O(heap size), so
        this is for rare control paths only — the snapshot layer calls it
        before pickling a post-mortem world to guarantee the saved state
        is resumable, even after an exception escaped a callback.
        """
        if self.pooling:
            alive = sum(1 for entry in self._heap if not entry[2].cancelled)
        else:
            alive = sum(1 for event in self._heap if not event.cancelled)
        if alive != self._live:
            raise SimulationError(
                f"heap/counter mismatch: {alive} live events in heap but "
                f"pending() reports {self._live}")

    # -- internals -----------------------------------------------------------

    def _compact_head(self) -> None:
        """Pop dead (cancelled/consumed) events off the heap head."""
        heap = self._heap
        pooling = self.pooling
        while heap:
            event = heap[0][2] if pooling else heap[0]
            if not event.cancelled:
                break
            heapq.heappop(heap)
            if pooling:
                self._release(event)

    def _release(self, event: Event) -> None:
        """Park a dead event in the free list (drops payload references)."""
        if len(self._free) < EVENT_POOL_CAP:
            event.callback = None
            event.args = ()
            self._free.append(event)
