"""Exception hierarchy for the repro package.

A single root (:class:`ReproError`) lets callers catch everything raised by
this library without masking unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """The event loop was used incorrectly (e.g. scheduling in the past)."""


class ConfigurationError(ReproError):
    """An experiment, device, or scheme was configured inconsistently."""


class RoutingError(ReproError):
    """No route exists for a packet, or a forwarding table is malformed."""


class TransportError(ReproError):
    """A transport connection was driven through an invalid state change."""
