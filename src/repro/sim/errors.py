"""Compatibility shim: the taxonomy now lives in :mod:`repro.errors`.

Historically this module defined the exception hierarchy; the canonical
home is :mod:`repro.errors` (one file, one root, plus the CLI exit-code
contract).  Everything is re-exported here so existing imports keep
working.
"""

from __future__ import annotations

from ..errors import (
    ConfigurationError,
    ReproError,
    RoutingError,
    SimulationError,
    TransportError,
    WatchdogTimeout,
)

__all__ = [
    "ReproError",
    "SimulationError",
    "WatchdogTimeout",
    "ConfigurationError",
    "RoutingError",
    "TransportError",
]
