"""Exception hierarchy for the repro package.

A single root (:class:`ReproError`) lets callers catch everything raised by
this library without masking unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """The event loop was used incorrectly (e.g. scheduling in the past)."""


class WatchdogTimeout(SimulationError):
    """A scenario exceeded its wall-clock or simulated-time budget.

    Raised by :class:`repro.faults.ScenarioWatchdog` after it has stopped
    the event loop; catching :class:`SimulationError` therefore also
    covers watchdog aborts (the CLI and the flight recorder rely on
    this).
    """


class ConfigurationError(ReproError, ValueError):
    """An experiment, device, or scheme was configured inconsistently.

    Also a :class:`ValueError`: configuration mistakes are bad values, and
    the double parentage lets old call sites that catch ``ValueError``
    keep working while new code catches the precise type (or
    :class:`ReproError` for anything raised by this library).
    """


class RoutingError(ReproError):
    """No route exists for a packet, or a forwarding table is malformed."""


class TransportError(ReproError):
    """A transport connection was driven through an invalid state change."""
