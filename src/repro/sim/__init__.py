"""Discrete-event simulation kernel: event loop, clock units, RNG, tracing."""

from . import units
from .engine import Event, Simulator
from .errors import (
    ConfigurationError,
    ReproError,
    RoutingError,
    SimulationError,
    TransportError,
)
from .randomness import RandomStreams, stable_hash
from .trace import TraceBus

__all__ = [
    "units",
    "Event",
    "Simulator",
    "ConfigurationError",
    "ReproError",
    "RoutingError",
    "SimulationError",
    "TransportError",
    "RandomStreams",
    "stable_hash",
    "TraceBus",
]
