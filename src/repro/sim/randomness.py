"""Seeded random streams.

Every stochastic component (flow generator per service, ECMP hashing salt,
start-time jitter, ...) draws from its **own** named stream derived from the
experiment's master seed.  This gives two properties the experiments rely
on:

* determinism — the same seed reproduces the same packet trace, and
* isolation — adding draws to one component does not perturb another
  (so e.g. enabling queue-length tracing cannot change which flow sizes the
  workload generator emits).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A factory of independent, named ``random.Random`` streams."""

    def __init__(self, master_seed: int = 1) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(
                int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child factory (e.g. one per experiment repetition)."""
        digest = hashlib.sha256(
            f"{self.master_seed}:spawn:{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))


def stable_hash(*parts: object) -> int:
    """Deterministic 64-bit hash of the given parts.

    Python's builtin ``hash`` is salted per process; ECMP and flow-to-queue
    mapping need a hash that is stable across runs so experiments reproduce.
    """
    text = "\x1f".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big")
