"""DynaQ reproduction: protocol-independent service queue isolation.

Reproduces Kim & Lee, "Protocol-Independent Service Queue Isolation for
Multi-Queue Data Centers" (ICDCS 2020) as a pure-Python packet-level
simulation stack:

* :mod:`repro.core` — DynaQ itself (Algorithm 1, victim search, ECN mode,
  hardware cost model);
* :mod:`repro.sim` — deterministic discrete-event kernel;
* :mod:`repro.net` — packets, multi-queue egress ports, switches, hosts,
  star and leaf-spine topologies with ECMP;
* :mod:`repro.queueing` — baseline and comparator buffer managers
  (BestEffort, PQL, DT, TCN, MQ-ECN, PMSB, Per-Queue ECN) and the
  DRR/WRR/SPQ schedulers;
* :mod:`repro.transport` — TCP (NewReno), CUBIC, DCTCP, RFC 6298 RTO,
  and PIAS tagging;
* :mod:`repro.workloads` — the four production flow-size distributions
  and the Poisson open-loop generator;
* :mod:`repro.metrics` — throughput series, Jain fairness, FCT
  breakdowns, queue-length traces;
* :mod:`repro.experiments` — one runner per paper figure plus report
  printers.

Quickstart::

    from repro.experiments.testbed import run_convergence
    result = run_convergence("dynaq", duration_s=2.0)
    print(result.mean_rate_bps(0), result.mean_rate_bps(1))
"""

__version__ = "1.0.0"

from . import apps, core, experiments, extras, metrics, net, queueing, sim, transport, workloads

__all__ = [
    "apps",
    "extras",
    "core",
    "experiments",
    "metrics",
    "net",
    "queueing",
    "sim",
    "transport",
    "workloads",
    "__version__",
]
