"""PMSB — Per-port Marking with Selective Blindness (Pan et al., ICDCS'18).

PMSB marks a packet only when **both** conditions hold at once:

* port condition:      total occupancy > ``K   = C * RTT * lambda``
* queue condition:     queue occupancy > ``K_i = (w_i/sum(w)) * C * RTT * lambda``

The port condition makes the scheme scheduler-agnostic (unlike MQ-ECN's
round-based thresholds) while the queue condition keeps small queues blind
to congestion caused by others.  The paper notes ``K_i <= K``, so the
*dropping* version of PMSB behaves like PQL — which is why DynaQ adopts
PMSB only for its optional ECN mode rather than as a drop policy.
"""

from __future__ import annotations

from typing import List

from ..net.packet import Packet
from .base import BufferManager, Decision, PortView
from .perqueue_ecn import DEFAULT_LAMBDA, ecn_threshold_bytes


class PMSBBuffer(BufferManager):
    """Per-port + per-queue simultaneous ECN marking."""

    name = "PMSB"

    def __init__(self, rtt_ns: int,
                 coefficient: float = DEFAULT_LAMBDA) -> None:
        super().__init__()
        self.rtt_ns = rtt_ns
        self.coefficient = coefficient
        self.port_threshold = 0
        self.queue_thresholds: List[int] = []

    def attach(self, port: PortView) -> None:
        super().attach(port)
        self.port_threshold = ecn_threshold_bytes(
            port.link_rate_bps, self.rtt_ns, self.coefficient)
        weights = port.queue_weights()
        total = sum(weights)
        self.queue_thresholds = [
            int(self.port_threshold * weight / total) for weight in weights
        ]

    def should_mark(self, packet: Packet, queue_index: int) -> bool:
        """The PMSB double condition (reused by DynaQ's ECN mode)."""
        return (packet.ecn_capable
                and self.port.total_bytes() > self.port_threshold
                and self.port.queue_bytes(queue_index)
                > self.queue_thresholds[queue_index])

    def admit(self, packet: Packet, queue_index: int) -> Decision:
        drop = self._port_tail_drop(packet)
        if drop is not None:
            return drop
        mark = self.should_mark(packet, queue_index)
        if mark:
            self.marks += 1
        return Decision.accepted(mark=mark)
