"""Longest-Queue-Drop (LQD) push-out buffer sharing.

The classic shared-memory policy with a *proven* worst-case guarantee:
admit every arrival while space exists; when the buffer is full, push
out the tail of the longest queue to make room (dropping the arrival
itself when its own queue is the longest).  Aiello, Kesselman and
Mansour showed LQD is at most 1.5-competitive against a clairvoyant
offline policy for shared-memory switches (arXiv:1207.1141), which makes
it the reference point of the competitive-ratio harness in
:mod:`repro.experiments.competitive` — DynaQ and friends trade some of
that worst-case efficiency for isolation, and the harness quantifies how
much.

Push-out uses the same :meth:`~repro.net.port.EgressPort.evict_tail`
mechanism as the BarberQ-style ``DynaQEvictBuffer``; on ports that do
not expose it (bare test fakes) LQD degrades to plain tail-drop.
"""

from __future__ import annotations

from typing import Optional

from ..net.packet import Packet
from .base import BufferManager, Decision, PortView


class LQDBuffer(BufferManager):
    """Push-out from the longest queue when the shared buffer is full."""

    name = "LQD"

    def __init__(self) -> None:
        super().__init__()
        self.pushouts = 0
        self._drop_longest = (Decision.dropped("longest queue")
                              if self._accept is not None else None)

    def admit(self, packet: Packet, queue_index: int) -> Decision:
        drop = self._port_tail_drop(packet)
        if drop is None:
            return self._accept or Decision.accepted()
        if self._push_out(packet, queue_index):
            self.drops -= 1  # _port_tail_drop counted a drop that isn't
            return self._accept or Decision.accepted()
        return self._drop_longest or Decision.dropped("longest queue")

    # -- push-out ---------------------------------------------------------------

    def _push_out(self, packet: Packet, queue_index: int) -> bool:
        """Evict tails of the longest queue until ``packet`` fits.

        The arriving packet counts toward its own queue: when no other
        queue is strictly longer than the arrival's queue *including the
        arrival*, the arrival itself is the longest queue's tail and is
        dropped instead (the classical LQD rule).
        """
        port = self.port
        evict = getattr(port, "evict_tail", None)
        if evict is None:
            return False
        needed = port.total_bytes() + packet.size - port.buffer_bytes
        guard = port.num_queues * 64  # safety bound on evictions
        arriving_len = port.queue_bytes(queue_index) + packet.size
        while needed > 0 and guard > 0:
            victim = self._longest_queue(exclude=queue_index)
            if (victim is None
                    or port.queue_bytes(victim) <= arriving_len):
                return False
            evicted = evict(victim)
            if evicted is None:
                return False
            self.pushouts += 1
            needed -= evicted.size
            guard -= 1
        return needed <= 0

    def _longest_queue(self, exclude: int) -> Optional[int]:
        """Index of the longest non-empty queue (lowest index on ties)."""
        port = self.port
        best: Optional[int] = None
        best_len = 0
        for index in range(port.num_queues):
            if index == exclude:
                continue
            length = port.queue_bytes(index)
            if length > best_len:
                best = index
                best_len = length
        return best
