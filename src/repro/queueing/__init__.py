"""Buffer managers and packet schedulers for multi-queue egress ports."""

from .base import BufferManager, Decision, PortView
from .besteffort import BestEffortBuffer
from .bshare import BShareBuffer
from .codel import CoDelBuffer
from .dynamic_threshold import DynamicThresholdBuffer
from .fb import FBBuffer
from .lqd import LQDBuffer
from .mqecn import MQECNBuffer
from .perqueue_ecn import DEFAULT_LAMBDA, PerQueueECNBuffer, ecn_threshold_bytes
from .pmsb import PMSBBuffer
from .pql import PQLBuffer
from .red import REDBuffer
from .segregation import SegregatedBuffer
from .tcn import TCNBuffer

__all__ = [
    "BufferManager",
    "Decision",
    "PortView",
    "BestEffortBuffer",
    "BShareBuffer",
    "CoDelBuffer",
    "DynamicThresholdBuffer",
    "FBBuffer",
    "LQDBuffer",
    "SegregatedBuffer",
    "MQECNBuffer",
    "DEFAULT_LAMBDA",
    "PerQueueECNBuffer",
    "ecn_threshold_bytes",
    "PMSBBuffer",
    "PQLBuffer",
    "REDBuffer",
    "TCNBuffer",
]
