"""Best-effort shared buffer (the paper's *BestEffort* baseline).

The whole port buffer is shared first-come-first-served: a packet is
accepted whenever total occupancy leaves room, regardless of which service
queue it belongs to.  This is the scheme Fig. 1 shows violating fair
sharing — a queue with many flows monopolises the buffer and starves the
others below their weighted BDP.
"""

from __future__ import annotations

from ..net.packet import Packet
from .base import BufferManager, Decision


class BestEffortBuffer(BufferManager):
    """Tail-drop on total port occupancy only."""

    name = "BestEffort"

    def admit(self, packet: Packet, queue_index: int) -> Decision:
        drop = self._port_tail_drop(packet)
        if drop is not None:
            return drop
        return self._accept or Decision.accepted()
