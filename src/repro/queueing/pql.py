"""Per-Queue static Limit (the paper's *PQL* baseline).

Each service queue owns a fixed slice of the port buffer proportional to
its weight: ``limit_i = B * w_i / sum(w)``.  A packet is dropped when its
queue's slice is full, even if the rest of the buffer is empty.  This
isolates queues perfectly but is **not work-conserving**: with few active
queues the aggregate occupancy can fall below the BDP and the link drains
(the throughput collapse in Figs. 5, 10-12).
"""

from __future__ import annotations

from typing import List

from ..net.packet import Packet
from .base import BufferManager, Decision, PortView


class PQLBuffer(BufferManager):
    """Static per-queue buffer limits proportional to queue weights."""

    name = "PQL"

    def __init__(self) -> None:
        super().__init__()
        self.limits: List[int] = []
        self._drop_limit = (Decision.dropped("per-queue limit")
                            if self._accept is not None else None)

    def attach(self, port: PortView) -> None:
        super().attach(port)
        weights = port.queue_weights()
        total = sum(weights)
        self.limits = [
            int(port.buffer_bytes * weight / total) for weight in weights
        ]

    def admit(self, packet: Packet, queue_index: int) -> Decision:
        occupancy = self._queue_occupancy
        queue_len = (occupancy[queue_index] if occupancy is not None
                     else self.port.queue_bytes(queue_index))
        if queue_len + packet.size > self.limits[queue_index]:
            self.drops += 1
            return self._drop_limit or Decision.dropped("per-queue limit")
        drop = self._port_tail_drop(packet)
        if drop is not None:
            return drop
        return self._accept or Decision.accepted()
