"""Per-Queue ECN baseline.

The naive multi-queue ECN configuration: each service queue gets a static
marking threshold ``K_i = (w_i / sum(w)) * C * RTT * lambda`` and a packet
is CE-marked whenever its queue already holds more than ``K_i`` bytes.
This is the "Per-Queue ECN" comparator of Fig. 9; with many queues each
``K_i`` becomes tiny and throughput collapses, which is exactly why MQ-ECN
and PMSB were proposed.
"""

from __future__ import annotations

from typing import List

from ..net.packet import Packet
from ..sim.units import SECOND
from .base import BufferManager, Decision, PortView

# Default ECN coefficient.  The testbed sets K = 30 KB at 1 Gbps / 500 us
# (BDP 62.5 KB), i.e. lambda ~= 0.48; the same value reproduces TCN's
# 240 us sojourn threshold.
DEFAULT_LAMBDA = 0.48


def ecn_threshold_bytes(rate_bps: int, rtt_ns: int,
                        coefficient: float) -> int:
    """``C * RTT * lambda`` in bytes — the standard marking threshold."""
    return int(rate_bps * rtt_ns * coefficient / (8 * SECOND))


class PerQueueECNBuffer(BufferManager):
    """Static per-queue ECN marking thresholds."""

    name = "PerQueueECN"

    def __init__(self, rtt_ns: int,
                 coefficient: float = DEFAULT_LAMBDA) -> None:
        super().__init__()
        self.rtt_ns = rtt_ns
        self.coefficient = coefficient
        self.queue_thresholds: List[int] = []

    def attach(self, port: PortView) -> None:
        super().attach(port)
        weights = port.queue_weights()
        total = sum(weights)
        port_threshold = ecn_threshold_bytes(
            port.link_rate_bps, self.rtt_ns, self.coefficient)
        self.queue_thresholds = [
            int(port_threshold * weight / total) for weight in weights
        ]

    def admit(self, packet: Packet, queue_index: int) -> Decision:
        drop = self._port_tail_drop(packet)
        if drop is not None:
            return drop
        mark = (packet.ecn_capable and
                self.port.queue_bytes(queue_index)
                > self.queue_thresholds[queue_index])
        if mark:
            self.marks += 1
        return Decision.accepted(mark=mark)
