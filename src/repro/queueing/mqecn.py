"""MQ-ECN (Bai et al., NSDI'16).

Per-queue marking threshold derived from the scheduler's *round*:

    K_i = min(quantum_i / T_round, C) * RTT * lambda

where ``T_round`` is the (estimated) time for the round-robin scheduler to
visit every active queue once.  A queue's threshold therefore tracks the
bandwidth it actually receives this round.  The paper's critique (§II-C):
the round concept ties MQ-ECN to round-based schedulers — it cannot be
configured on SPQ, so it cannot protect latency-sensitive small flows, and
a drop-based conversion would inherit the same limitation.

This implementation reads the live round-time estimate from a
:class:`~repro.queueing.schedulers.drr.DRRScheduler` bound to the port.
"""

from __future__ import annotations

from ..net.packet import Packet
from ..sim.units import SECOND
from .base import BufferManager, Decision, PortView
from .perqueue_ecn import DEFAULT_LAMBDA
from .schedulers.drr import DRRScheduler


class MQECNBuffer(BufferManager):
    """Round-time-scaled per-queue ECN marking (DRR/WRR schedulers only)."""

    name = "MQ-ECN"

    def __init__(self, rtt_ns: int,
                 coefficient: float = DEFAULT_LAMBDA) -> None:
        super().__init__()
        self.rtt_ns = rtt_ns
        self.coefficient = coefficient
        self._scheduler: DRRScheduler = None

    def attach(self, port: PortView) -> None:
        super().attach(port)
        scheduler = getattr(port, "scheduler", None)
        if isinstance(scheduler, DRRScheduler):
            self._scheduler = scheduler
            # The round-time EWMA is lazy by default (perf fast path);
            # MQ-ECN is its consumer, so switch it on.
            scheduler.enable_round_tracking()
        else:
            raise TypeError(
                "MQ-ECN requires a round-based (DRR) scheduler; the round "
                "concept is undefined for SPQ — see paper §II-C")

    def marking_threshold(self, queue_index: int) -> int:
        """``K_i`` for the current round-time estimate, in bytes."""
        rate = self.port.link_rate_bps
        round_ns = self._scheduler.estimated_round_time_ns(rate)
        if round_ns <= 0:
            service_rate = float(rate)
        else:
            quantum = self._scheduler.quanta[queue_index]
            service_rate = min(quantum * 8 * SECOND / round_ns, float(rate))
        return int(service_rate * self.rtt_ns * self.coefficient
                   / (8 * SECOND))

    def admit(self, packet: Packet, queue_index: int) -> Decision:
        drop = self._port_tail_drop(packet)
        if drop is not None:
            return drop
        mark = (packet.ecn_capable and
                self.port.queue_bytes(queue_index)
                > self.marking_threshold(queue_index))
        if mark:
            self.marks += 1
        return Decision.accepted(mark=mark)
