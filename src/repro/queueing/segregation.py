"""Greedy class-segregation buffer sharing.

The greedy algorithms of the class-segregation family (Kesselman et
al., arXiv:1109.6060 / arXiv:1304.3172) manage one shared buffer over
packet *classes* of different values: admit while space exists; when
the buffer is full, greedily push out buffered packets of a strictly
lower-valued class to make room for a higher-valued arrival, preferring
victims holding the most buffer beyond their value-proportional
segment.  Here a queue's scheduler weight doubles as its class value
(override with ``values=``), so ``repro weighted --weights 4,3,2,1``
exercises real segregation while equal-weight scenarios degrade
gracefully to plain shared tail-drop.

Push-out reuses :meth:`~repro.net.port.EgressPort.evict_tail` exactly
like :class:`~repro.queueing.lqd.LQDBuffer`; without it (bare test
fakes) the policy is tail-drop only.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..net.packet import Packet
from .base import BufferManager, Decision, PortView


class SegregatedBuffer(BufferManager):
    """Value-ordered greedy push-out with per-class segments."""

    name = "SEG"

    def __init__(self, values: Optional[Sequence[float]] = None) -> None:
        super().__init__()
        if values is not None and any(v <= 0 for v in values):
            raise ValueError("class values must be positive")
        self._values_override = (list(values) if values is not None
                                 else None)
        self.values: List[float] = []
        self.segments: List[int] = []
        self.pushouts = 0
        self._drop_class = (Decision.dropped("class segregation")
                            if self._accept is not None else None)

    def attach(self, port: PortView) -> None:
        super().attach(port)
        if self._values_override is not None:
            if len(self._values_override) != port.num_queues:
                raise ValueError(
                    f"expected {port.num_queues} class values, "
                    f"got {len(self._values_override)}")
            self.values = list(self._values_override)
        else:
            self.values = list(port.queue_weights())
        total = sum(self.values)
        self.segments = [
            int(port.buffer_bytes * value / total) for value in self.values
        ]

    def admit(self, packet: Packet, queue_index: int) -> Decision:
        drop = self._port_tail_drop(packet)
        if drop is None:
            return self._accept or Decision.accepted()
        if self._push_out(packet, queue_index):
            self.drops -= 1  # _port_tail_drop counted a drop that isn't
            return self._accept or Decision.accepted()
        return self._drop_class or Decision.dropped("class segregation")

    # -- push-out ---------------------------------------------------------------

    def _push_out(self, packet: Packet, queue_index: int) -> bool:
        """Evict lower-valued tails until ``packet`` fits, or give up."""
        port = self.port
        evict = getattr(port, "evict_tail", None)
        if evict is None:
            return False
        needed = port.total_bytes() + packet.size - port.buffer_bytes
        guard = port.num_queues * 64  # safety bound on evictions
        value = self.values[queue_index]
        while needed > 0 and guard > 0:
            victim = self._cheapest_victim(queue_index, value)
            if victim is None:
                return False
            evicted = evict(victim)
            if evicted is None:
                return False
            self.pushouts += 1
            needed -= evicted.size
            guard -= 1
        return needed <= 0

    def _cheapest_victim(self, exclude: int,
                         value: float) -> Optional[int]:
        """The lowest-valued non-empty queue strictly below ``value``.

        Ties prefer the queue holding the most buffer beyond its
        value-proportional segment, then the lowest index, so victim
        choice is deterministic.
        """
        port = self.port
        best: Optional[int] = None
        best_value = value
        best_overage = 0
        for index in range(port.num_queues):
            if index == exclude:
                continue
            length = port.queue_bytes(index)
            if length <= 0 or self.values[index] >= value:
                continue
            overage = length - self.segments[index]
            if (best is None or self.values[index] < best_value
                    or (self.values[index] == best_value
                        and overage > best_overage)):
                best = index
                best_value = self.values[index]
                best_overage = overage
        return best
