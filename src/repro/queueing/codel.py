"""CoDel — Controlled Delay AQM (Nichols & Jacobson, 2012), per queue.

CoDel is the intellectual ancestor of TCN: it measures each packet's
*sojourn time* at dequeue and enters a dropping state when the sojourn
stays above ``target`` for longer than ``interval``; successive drops
accelerate by the inverse-square-root control law.  TCN replaces the
interval state machine with instantaneous threshold marking to keep
switch state per-port rather than per-flow-time, which is exactly the
simplification the paper's §II-C discussion builds on.

Included as an extra comparator: per-service-queue CoDel instances with
ECN marking (mark instead of drop for ECT packets, as in the Linux
implementation).
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..net.packet import Packet
from ..sim.units import MILLISECOND, microseconds
from .base import BufferManager, Decision, PortView

DEFAULT_TARGET_NS = microseconds(500)   # ~RTT-scale for a 1 GbE rack
DEFAULT_INTERVAL_NS = 10 * MILLISECOND


class _CoDelState:
    """Per-queue CoDel control-law state."""

    __slots__ = ("first_above_time", "dropping", "drop_next", "count")

    def __init__(self) -> None:
        self.first_above_time: Optional[int] = None
        self.dropping = False
        self.drop_next = 0
        self.count = 0


class CoDelBuffer(BufferManager):
    """Per-queue CoDel with dequeue-time marking (or dropping)."""

    name = "CoDel"

    def __init__(self, *, target_ns: int = DEFAULT_TARGET_NS,
                 interval_ns: int = DEFAULT_INTERVAL_NS,
                 ecn: bool = True) -> None:
        if target_ns <= 0 or interval_ns <= 0:
            raise ValueError("target and interval must be positive")
        super().__init__()
        self.target_ns = target_ns
        self.interval_ns = interval_ns
        self.ecn = ecn
        self._states: List[_CoDelState] = []

    def attach(self, port: PortView) -> None:
        super().attach(port)
        self._states = [_CoDelState() for _ in range(port.num_queues)]

    def admit(self, packet: Packet, queue_index: int) -> Decision:
        drop = self._port_tail_drop(packet)
        if drop is not None:
            return drop
        return Decision.accepted()

    # -- the control law (runs at dequeue) ------------------------------------------

    def _control_interval(self, count: int) -> int:
        return int(self.interval_ns / math.sqrt(max(count, 1)))

    def on_dequeue(self, packet: Packet, queue_index: int) -> Decision:
        state = self._states[queue_index]
        now = self.port.now()
        sojourn = now - packet.enqueued_at

        if sojourn < self.target_ns:
            # Below target: leave the dropping state.
            state.first_above_time = None
            state.dropping = False
            return Decision.accepted()

        if state.first_above_time is None:
            state.first_above_time = now + self.interval_ns
            return Decision.accepted()

        if not state.dropping:
            if now >= state.first_above_time:
                state.dropping = True
                state.count = max(1, state.count - 2
                                  if state.count > 2 else 1)
                state.drop_next = now + self._control_interval(state.count)
                return self._congestion_action(packet)
            return Decision.accepted()

        if now >= state.drop_next:
            state.count += 1
            state.drop_next = now + self._control_interval(state.count)
            return self._congestion_action(packet)
        return Decision.accepted()

    def _congestion_action(self, packet: Packet) -> Decision:
        if self.ecn and packet.ecn_capable:
            self.marks += 1
            return Decision.accepted(mark=True)
        self.drops += 1
        return Decision.dropped("codel")
