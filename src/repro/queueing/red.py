"""RED / WRED — Random Early Detection (Floyd & Jacobson, 1993).

The classic AQM underlying all the ECN work the paper builds on: keep an
EWMA of the queue length and, between ``min_th`` and ``max_th``, drop (or
CE-mark) arrivals with a probability that ramps up to ``max_p``; above
``max_th`` drop everything.  The *weighted* variant (WRED) scales the
thresholds per service queue by scheduler weight, which is the closest
classic-AQM analogue of the paper's per-queue threshold idea — and a
useful extra baseline: WRED's thresholds are static, so it inherits PQL's
work-conservation problem in marking form.

The gentle ramp and per-queue averaging follow the standard formulation;
counting-based dropping (``count`` since last drop) is included so the
drop process is uniformly spread, as in the original paper.
"""

from __future__ import annotations

import random
from typing import List

from ..net.packet import Packet
from .base import BufferManager, Decision, PortView

DEFAULT_WEIGHT = 0.002     # EWMA gain for the average queue length
DEFAULT_MAX_P = 0.1        # marking probability at max_th


class REDBuffer(BufferManager):
    """Per-queue RED with optional ECN marking (WRED when weighted).

    ``min_th``/``max_th`` default to 20 % / 60 % of each queue's
    weight-proportional share of the port buffer.
    """

    name = "RED"

    def __init__(self, *, min_th_fraction: float = 0.2,
                 max_th_fraction: float = 0.6,
                 max_p: float = DEFAULT_MAX_P,
                 ewma_weight: float = DEFAULT_WEIGHT,
                 ecn: bool = True,
                 seed: int = 20200426) -> None:
        if not 0 < min_th_fraction < max_th_fraction <= 1:
            raise ValueError("need 0 < min_th < max_th <= 1 (fractions)")
        if not 0 < max_p <= 1:
            raise ValueError(f"max_p must be in (0, 1], got {max_p}")
        super().__init__()
        self.min_th_fraction = min_th_fraction
        self.max_th_fraction = max_th_fraction
        self.max_p = max_p
        self.ewma_weight = ewma_weight
        self.ecn = ecn
        self._seed = seed
        self.min_th: List[int] = []
        self.max_th: List[int] = []
        self.avg: List[float] = []
        self._count: List[int] = []
        self._rng = None

    def attach(self, port: PortView) -> None:
        super().attach(port)
        self._rng = random.Random(self._seed)
        weights = port.queue_weights()
        total = sum(weights)
        shares = [int(port.buffer_bytes * w / total) for w in weights]
        self.min_th = [int(s * self.min_th_fraction) for s in shares]
        self.max_th = [int(s * self.max_th_fraction) for s in shares]
        self.avg = [0.0] * port.num_queues
        self._count = [0] * port.num_queues

    def _update_average(self, queue_index: int) -> float:
        current = self.port.queue_bytes(queue_index)
        self.avg[queue_index] += self.ewma_weight * (
            current - self.avg[queue_index])
        return self.avg[queue_index]

    def _mark_probability(self, queue_index: int, avg: float) -> float:
        span = self.max_th[queue_index] - self.min_th[queue_index]
        if span <= 0:
            return self.max_p
        base = self.max_p * (avg - self.min_th[queue_index]) / span
        # Uniform spreading: scale by the count since the last action.
        denominator = 1 - self._count[queue_index] * base
        if denominator <= 0:
            return 1.0
        return min(base / denominator, 1.0)

    def admit(self, packet: Packet, queue_index: int) -> Decision:
        drop = self._port_tail_drop(packet)
        if drop is not None:
            return drop
        avg = self._update_average(queue_index)
        if avg < self.min_th[queue_index]:
            self._count[queue_index] = 0
            return Decision.accepted()
        if avg >= self.max_th[queue_index]:
            self._count[queue_index] = 0
            return self._congestion_action(packet, "red max threshold")
        probability = self._mark_probability(queue_index, avg)
        self._count[queue_index] += 1
        if self._rng.random() < probability:
            self._count[queue_index] = 0
            return self._congestion_action(packet, "red early")
        return Decision.accepted()

    def _congestion_action(self, packet: Packet, reason: str) -> Decision:
        if self.ecn and packet.ecn_capable:
            self.marks += 1
            return Decision.accepted(mark=True)
        self.drops += 1
        return Decision.dropped(reason)
