"""FB: flexible buffer sharing with per-queue burst absorption.

A deterministic reduction of the FB scheme (Apostolaki et al.,
arXiv:2105.10553): like Choudhury-Hahne DT, every queue's admission
limit tracks the *unused* buffer, but queues that are currently far
below their fair share — the signature of a fresh burst hitting a
drained queue — get a boosted threshold so short bursts are absorbed
instead of tail-dropped, while standing (congested) queues stay capped
at the plain DT threshold:

    T_i(t) = alpha * boost * free(t)   if q_i(t) < phi * fair_i
    T_i(t) = alpha * free(t)           otherwise

with ``fair_i = B * w_i / sum(w)`` and ``free(t) = B - sum_j q_j(t)``.
The policy is stateless beyond the port occupancy it observes, which
keeps it trivially snapshot-safe and FAST/REFERENCE-identical.
"""

from __future__ import annotations

from typing import List

from ..net.packet import Packet
from .base import BufferManager, Decision, PortView


class FBBuffer(BufferManager):
    """DT-style thresholds with a boost for under-share (bursty) queues."""

    name = "FB"

    def __init__(self, alpha: float = 1.0, burst_boost: float = 4.0,
                 burst_fraction: float = 0.25) -> None:
        super().__init__()
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        if burst_boost < 1:
            raise ValueError(
                f"burst_boost must be >= 1, got {burst_boost}")
        if not 0 < burst_fraction <= 1:
            raise ValueError(
                f"burst_fraction must be in (0, 1], got {burst_fraction}")
        self.alpha = alpha
        self.burst_boost = burst_boost
        self.burst_fraction = burst_fraction
        self.fair_bytes: List[int] = []
        self._drop_threshold = (Decision.dropped("fb threshold")
                                if self._accept is not None else None)

    def attach(self, port: PortView) -> None:
        super().attach(port)
        weights = port.queue_weights()
        total = sum(weights)
        self.fair_bytes = [
            int(port.buffer_bytes * weight / total) for weight in weights
        ]

    def current_threshold(self, queue_index: int) -> float:
        """The queue's admission limit at the current occupancy."""
        port = self.port
        queue_len = port.queue_bytes(queue_index)
        free = max(port.buffer_bytes - port.total_bytes(), 0)
        alpha = self.alpha
        if queue_len < self.burst_fraction * self.fair_bytes[queue_index]:
            alpha *= self.burst_boost
        return alpha * free

    def admit(self, packet: Packet, queue_index: int) -> Decision:
        port = self.port
        occupancy = self._queue_occupancy
        queue_len = (occupancy[queue_index] if occupancy is not None
                     else port.queue_bytes(queue_index))
        total = (port._total_bytes if self._direct_total
                 else port.total_bytes())
        free = port.buffer_bytes - total
        alpha = self.alpha
        if queue_len < self.burst_fraction * self.fair_bytes[queue_index]:
            alpha *= self.burst_boost
        if queue_len + packet.size > alpha * max(free, 0):
            self.drops += 1
            return self._drop_threshold or Decision.dropped("fb threshold")
        if total + packet.size > port.buffer_bytes:
            self.drops += 1
            return self._drop_full or Decision.dropped("port buffer full")
        return self._accept or Decision.accepted()
