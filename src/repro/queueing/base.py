"""Buffer-manager interface.

A buffer manager implements the switch's *enqueue admission* policy for one
egress port: given an arriving packet and its service queue, decide whether
to accept it, accept-and-ECN-mark it, or drop it.  Managers observe port
state (queue lengths, total occupancy, weights, link rate, clock) through
the :class:`PortView` protocol, and may keep their own state (DynaQ's
dynamic thresholds, DCTCP-style marking state, ...).

Dequeue-time hooks exist for TCN, whose sojourn-time marking can only
happen when the packet leaves the queue.
"""

from __future__ import annotations

from typing import List, Optional, Protocol

from ..net.packet import Packet
from ..perf.config import active_config


class PortView(Protocol):
    """What a buffer manager may observe about its port."""

    buffer_bytes: int          # port buffer size B
    num_queues: int            # M
    link_rate_bps: int         # C

    def queue_bytes(self, index: int) -> int:
        """Current occupancy of service queue ``index``, in bytes."""
        ...

    def total_bytes(self) -> int:
        """Current occupancy of the whole port buffer, in bytes."""
        ...

    def queue_weights(self) -> List[float]:
        """Scheduler weights w_i (normalised by the manager as needed)."""
        ...

    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        ...


class Decision:
    """Outcome of an admission check.

    Decisions are immutable by convention: every consumer only reads the
    three fields.  That is what lets the fast path
    (:attr:`~repro.perf.config.PerfConfig.cached_decisions`) hand out
    shared singleton instances for the recurring outcomes instead of
    allocating two objects per packet (admit + dequeue hook).
    """

    __slots__ = ("accept", "mark", "reason")

    def __init__(self, accept: bool, mark: bool = False,
                 reason: str = "") -> None:
        self.accept = accept
        self.mark = mark
        self.reason = reason

    @classmethod
    def accepted(cls, mark: bool = False) -> "Decision":
        return cls(accept=True, mark=mark)

    @classmethod
    def dropped(cls, reason: str) -> "Decision":
        return cls(accept=False, reason=reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.accept:
            return "<accept+mark>" if self.mark else "<accept>"
        return f"<drop: {self.reason}>"


class BufferManager:
    """Base class for per-port buffer managers.

    Subclasses must implement :meth:`admit`.  ``attach`` is called once by
    the port before any traffic flows.
    """

    name = "base"

    def __init__(self) -> None:
        self.port: Optional[PortView] = None
        self.drops = 0
        self.marks = 0
        self._queue_occupancy = None   # direct port state, set by attach
        self._direct_total = False
        # Inline-admission contract (fast path, read by EgressPort under
        # inline_hot_calls): when this is a list L, the manager
        # guarantees that ``admit(packet, q)`` is exactly an unmarked,
        # side-effect-free accept whenever
        # ``occupancy[q] + size <= L[q]`` and the port buffer has room
        # for ``size`` — so the port may skip the admit() call for such
        # packets.  Any other case still goes through admit().  Managers
        # whose accept path counts, marks, or otherwise mutates state
        # must leave this None; managers replacing their threshold list
        # wholesale must re-point this attribute at the new list.
        self.inline_admit_thresholds = None
        # Companion contract for the drop side: decisions listed here are
        # *repeat-pure* — ``admit()`` returning one of them read manager
        # and port state but mutated nothing except drop counters, so an
        # identical call (same queue, same size) with no intervening
        # accept is guaranteed the same outcome.  EgressPort.send_many
        # uses this to memoise drop storms within one burst, re-applying
        # the counters through :meth:`repeat_drop` instead of re-deriving
        # the decision.  Only list shared singletons (identity is the
        # memo key), and never a decision whose path can mutate state
        # (threshold steals, evictions).
        self.pure_drop_decisions = ()
        # Fast path: pre-built singletons for the recurring outcomes.
        # None in reference mode, in which case every site allocates a
        # fresh Decision exactly as the pre-optimisation code did.
        if active_config().cached_decisions:
            self._accept: Optional[Decision] = Decision.accepted()
            self._drop_full: Optional[Decision] = Decision.dropped(
                "port buffer full")
        else:
            self._accept = None
            self._drop_full = None

    def attach(self, port: PortView) -> None:
        """Bind the manager to its port and initialise derived state.

        With :attr:`~repro.perf.config.PerfConfig.inline_hot_calls` on,
        admission code reads the port's occupancy state directly
        (``_queue_bytes`` list / ``_total_bytes`` int) instead of going
        through the PortView methods on every packet; ports that don't
        expose those internals (test fakes) fall back to the protocol.
        """
        self.port = port
        inline = active_config().inline_hot_calls
        self._queue_occupancy = (getattr(port, "_queue_bytes", None)
                                 if inline else None)
        self._direct_total = inline and hasattr(port, "_total_bytes")

    def bind_trace(self, trace, port_name: str) -> None:
        """Offer the manager the port's trace bus (called by the port
        before :meth:`attach` when the port has one).  The default ignores
        it; managers that publish telemetry (DynaQ's threshold exchanges)
        override this to pick the bus up unless one was already passed to
        their constructor."""

    # -- hooks ----------------------------------------------------------------

    def admit(self, packet: Packet, queue_index: int) -> Decision:
        """Decide the fate of ``packet`` arriving for ``queue_index``."""
        raise NotImplementedError

    def on_enqueued(self, packet: Packet, queue_index: int) -> None:
        """Called after a packet was appended to its queue."""

    def repeat_drop(self, decision: Decision) -> None:
        """Re-apply the counter effects of a memoised pure drop.

        Only ever called with a member of :attr:`pure_drop_decisions`;
        managers listing any must override this to bump exactly the
        counters their ``admit()`` bumps on that decision's path.
        """
        self.drops += 1

    def on_dequeue(self, packet: Packet, queue_index: int) -> Decision:
        """Called when a packet is pulled for transmission.

        Returning ``Decision.accepted(mark=True)`` CE-marks the departing
        packet (TCN); returning a drop discards it at dequeue time (the
        TCN *drop variant* discussed in the paper's §II-C).  The default
        forwards unconditionally.
        """
        return self._accept or Decision.accepted()

    # -- shared helpers ---------------------------------------------------------

    def _fair_share_fraction(self, queue_index: int) -> float:
        """``w_i / sum(w)`` for this port's configured weights."""
        weights = self.port.queue_weights()
        return weights[queue_index] / sum(weights)

    def _port_tail_drop(self, packet: Packet) -> Optional[Decision]:
        """Common final check: drop when the port buffer is full."""
        port = self.port
        total = (port._total_bytes if self._direct_total
                 else port.total_bytes())
        if total + packet.size > port.buffer_bytes:
            self.drops += 1
            return self._drop_full or Decision.dropped("port buffer full")
        return None
