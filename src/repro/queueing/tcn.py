"""TCN — ECN over generic packet scheduling via sojourn time (CoNEXT'16).

TCN replaces queue-length thresholds with the packet's **sojourn time**:
when a packet is dequeued after spending more than ``T = RTT * lambda`` in
the buffer, it is CE-marked.  Because the sojourn time is only known at
dequeue, TCN is inherently a *dequeue-marking* scheme.

The module also implements the **drop variant** the paper's §II-C uses to
argue that TCN cannot simply be converted into a protocol-independent
dropper: dropping the just-dequeued packet (a) idles the link for the slot
the packet would have used and (b) wastes the buffering the packet already
consumed, inflating FCT by the sojourn time plus an RTO.
"""

from __future__ import annotations

from ..net.packet import Packet
from .base import BufferManager, Decision, PortView
from .perqueue_ecn import DEFAULT_LAMBDA
from ..sim.units import SECOND


class TCNBuffer(BufferManager):
    """Sojourn-time ECN marking at dequeue (plus port tail drop)."""

    name = "TCN"

    def __init__(self, rtt_ns: int, coefficient: float = DEFAULT_LAMBDA,
                 drop_variant: bool = False) -> None:
        super().__init__()
        self.sojourn_threshold_ns = int(rtt_ns * coefficient)
        self.drop_variant = drop_variant
        if drop_variant:
            self.name = "TCN-drop"
        self.dequeue_drops = 0

    def attach(self, port: PortView) -> None:
        super().attach(port)

    def admit(self, packet: Packet, queue_index: int) -> Decision:
        drop = self._port_tail_drop(packet)
        if drop is not None:
            return drop
        return Decision.accepted()

    def on_dequeue(self, packet: Packet, queue_index: int) -> Decision:
        sojourn = self.port.now() - packet.enqueued_at
        if sojourn <= self.sojourn_threshold_ns:
            return Decision.accepted()
        if self.drop_variant:
            # The paper's thought experiment: drop the packet we already
            # paid to buffer and schedule.  The transmission slot is lost.
            self.dequeue_drops += 1
            self.drops += 1
            return Decision.dropped("sojourn time exceeded")
        if packet.ecn_capable:
            self.marks += 1
            return Decision.accepted(mark=True)
        return Decision.accepted()

    @property
    def sojourn_threshold_us(self) -> float:
        """The threshold in microseconds (the paper quotes 240 us)."""
        return self.sojourn_threshold_ns * 1e6 / SECOND
