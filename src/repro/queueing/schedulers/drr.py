"""Deficit Round Robin (Shreedhar & Varghese).

Each active queue holds a *deficit counter*; visiting a queue adds its
*quantum* and the queue may send packets while the deficit covers the
head-of-line size.  Quanta are bytes; the paper's testbed uses 1.5 KB (one
MTU) per unit of weight, e.g. weights 4:3:2:1 become quanta 6/4.5/3/1.5 KB.

The scheduler also maintains an EWMA estimate of the *round time* (the time
to cycle once through all active queues), which MQ-ECN's marking threshold
``K_i = min(quantum_i / T_round, C) * RTT * lambda`` consumes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence

from ...perf.config import active_config
from .base import QueueView, Scheduler, validate_weights

# EWMA gain for the round-time estimate, as in the MQ-ECN reference
# implementation (new sample weighted 1/4).
ROUND_TIME_GAIN = 0.25


class DRRScheduler(Scheduler):
    """Byte-based deficit round robin over ``len(quanta)`` queues."""

    def __init__(self, quanta: Sequence[float]) -> None:
        quanta_list = validate_weights(quanta)
        super().__init__(num_queues=len(quanta_list))
        self.quanta = quanta_list
        self._deficits: List[float] = [0.0] * self.num_queues
        self._active: Deque[int] = deque()
        self._in_active: List[bool] = [False] * self.num_queues
        # Round-time estimation state (consumed by MQ-ECN).
        self._clock = None            # callable returning now (ns), set by port
        self._round_started_at: Optional[int] = None
        self._round_head: Optional[int] = None
        self.round_time_ns: float = 0.0
        # Fast path: only MQ-ECN reads the round-time EWMA, so tracking
        # (a clock lambda call per rotation) stays off until a consumer
        # calls enable_round_tracking().  Reference mode tracks always,
        # as the pre-optimisation scheduler did.
        self._track_rounds = not active_config().lazy_round_time
        # Fast path: direct references to the port's queue deques (set by
        # the port via bind_queues when inline_hot_calls is on), replacing
        # the two QueueView method calls per select() iteration.
        self._fast_queues = None

    # -- wiring ---------------------------------------------------------------

    def bind_clock(self, clock) -> None:
        """Give the scheduler access to simulated time (for T_round)."""
        self._clock = clock

    def bind_queues(self, queues) -> None:
        """Give the scheduler direct access to the port's queue deques.

        Optional fast-path wiring: the port shares the very list of
        deques backing its :class:`QueueView` answers, so emptiness and
        head size checks become subscripting instead of method calls.
        """
        if len(queues) != self.num_queues:
            raise ValueError(
                f"bind_queues: expected {self.num_queues} queues, "
                f"got {len(queues)}")
        self._fast_queues = queues

    def enable_round_tracking(self) -> None:
        """Turn the round-time EWMA on (MQ-ECN calls this on attach)."""
        self._track_rounds = True

    # -- scheduler interface ---------------------------------------------------

    @property
    def weights(self) -> List[float]:
        return list(self.quanta)

    def set_weights(self, quanta) -> None:
        """Swap the quanta mid-run (operator reconfiguration fault).

        Deficits are preserved: a queue mid-round keeps the credit it has
        already earned and simply accumulates at the new rate from the
        next visit on.
        """
        self.quanta = self._check_weight_count(validate_weights(quanta))

    def on_enqueue(self, index: int) -> None:
        if not self._in_active[index]:
            self._in_active[index] = True
            self._deficits[index] = 0.0
            self._active.append(index)

    def select(self, queues: QueueView) -> Optional[int]:
        # Each loop iteration either returns a packet, retires an empty
        # queue, or rotates the active list after granting a quantum; with a
        # finite head size the deficit eventually covers it, so this
        # terminates.
        track = self._track_rounds
        active = self._active
        deficits = self._deficits
        fast = self._fast_queues
        while active:
            index = active[0]
            if fast is not None:
                queue = fast[index]
                if queue:
                    head = queue[0].size
                else:
                    head = None
            elif queues.queue_empty(index):
                head = None
            else:
                head = queues.head_size(index)
            if head is None:
                active.popleft()
                self._in_active[index] = False
                deficits[index] = 0.0
                if track:
                    self._note_rotation()
                continue
            if deficits[index] >= head:
                deficits[index] -= head
                return index
            deficits[index] += self.quanta[index]
            active.rotate(-1)
            if track:
                self._note_rotation()
        return None

    # -- round-time estimation ---------------------------------------------------

    def _note_rotation(self) -> None:
        """Track when the head of the active list wraps around.

        A "round" completes when the queue that headed the active list is
        reached again; the elapsed wall-clock feeds the EWMA used by
        MQ-ECN.  The estimate is best-effort — queues joining/leaving reset
        the reference head, matching the switch-implementation reality that
        T_round is itself an approximation.
        """
        if self._clock is None:
            return
        if not self._active:
            self._round_head = None
            self._round_started_at = None
            return
        head = self._active[0]
        if self._round_head is None:
            self._round_head = head
            self._round_started_at = self._clock()
            return
        if head == self._round_head and self._round_started_at is not None:
            now = self._clock()
            sample = now - self._round_started_at
            if sample > 0:
                if self.round_time_ns <= 0:
                    self.round_time_ns = float(sample)
                else:
                    self.round_time_ns += ROUND_TIME_GAIN * (
                        sample - self.round_time_ns)
            self._round_started_at = now

    def estimated_round_time_ns(self, link_rate_bps: int) -> float:
        """Round-time estimate for MQ-ECN, with an analytic fallback.

        Before any measurement exists, approximate the round as the time to
        serve one quantum from every active queue at line rate.
        """
        if self.round_time_ns > 0:
            return self.round_time_ns
        active_quanta = sum(
            self.quanta[i] for i in range(self.num_queues)
            if self._in_active[i])
        if active_quanta <= 0 or link_rate_bps <= 0:
            return 0.0
        return active_quanta * 8 * 1e9 / link_rate_bps
