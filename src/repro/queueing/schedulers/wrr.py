"""Weighted Round Robin.

Classic packet-based WRR: in each round, queue *i* may send up to
``weight_i`` packets.  The large-scale simulations in the paper configure
"WRR with equal weights", which degenerates to plain round robin.

Packet-based WRR is only weight-accurate when packets are equally sized;
that is exactly the regime of the paper's simulations (fixed MTU / jumbo
frames).  For mixed sizes, prefer :class:`~.drr.DRRScheduler`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence

from .base import QueueView, Scheduler, validate_weights


class WRRScheduler(Scheduler):
    """Packet-based weighted round robin over ``len(weights)`` queues."""

    def __init__(self, weights: Sequence[float]) -> None:
        weight_list = validate_weights(weights)
        super().__init__(num_queues=len(weight_list))
        self._weights = weight_list
        self._credits: List[float] = [0.0] * self.num_queues
        self._active: Deque[int] = deque()
        self._in_active: List[bool] = [False] * self.num_queues

    @property
    def weights(self) -> List[float]:
        return list(self._weights)

    def set_weights(self, weights: Sequence[float]) -> None:
        """Swap the per-round packet budgets mid-run."""
        self._weights = self._check_weight_count(validate_weights(weights))

    def on_enqueue(self, index: int) -> None:
        if not self._in_active[index]:
            self._in_active[index] = True
            self._credits[index] = 0.0
            self._active.append(index)

    def select(self, queues: QueueView) -> Optional[int]:
        while self._active:
            index = self._active[0]
            if queues.queue_empty(index):
                self._active.popleft()
                self._in_active[index] = False
                self._credits[index] = 0.0
                continue
            if self._credits[index] >= 1.0:
                self._credits[index] -= 1.0
                return index
            self._credits[index] += self._weights[index]
            self._active.rotate(-1)
        return None
