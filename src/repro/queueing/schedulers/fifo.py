"""Single-queue FIFO scheduler.

Used when a port is configured without service differentiation (e.g. host
NIC queues, or the pure best-effort motivation experiment run with a single
queue).
"""

from __future__ import annotations

from typing import Optional

from .base import QueueView, Scheduler


class FIFOScheduler(Scheduler):
    """Trivial scheduler over one queue."""

    def __init__(self) -> None:
        super().__init__(num_queues=1)

    def select(self, queues: QueueView) -> Optional[int]:
        if queues.queue_empty(0):
            return None
        return 0
