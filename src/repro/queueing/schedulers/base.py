"""Packet-scheduler interface.

A scheduler decides, each time the link becomes free, which service queue
the egress port should dequeue from next.  Schedulers never touch packets:
they see queue state through the :class:`QueueView` protocol the port
implements (head-of-line packet size, emptiness) and return a queue index.

All schedulers here are **work-conserving**: if any queue holds a packet,
``select`` returns an index; ``None`` means every queue is empty.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence

from ...sim.errors import ConfigurationError


class QueueView(Protocol):
    """What a scheduler is allowed to observe about the port's queues."""

    def queue_empty(self, index: int) -> bool:
        """True if service queue ``index`` holds no packets."""
        ...

    def head_size(self, index: int) -> int:
        """Wire size (bytes) of the head-of-line packet of queue ``index``.

        Undefined when the queue is empty; schedulers must check first.
        """
        ...


class Scheduler:
    """Base class for packet schedulers."""

    def __init__(self, num_queues: int) -> None:
        if num_queues <= 0:
            raise ConfigurationError(
                f"need at least one queue, got {num_queues}")
        self.num_queues = num_queues

    def on_enqueue(self, index: int) -> None:
        """Notification that a packet was enqueued into queue ``index``."""

    def select(self, queues: QueueView) -> Optional[int]:
        """Return the queue index to dequeue from, or ``None`` if all empty."""
        raise NotImplementedError

    @property
    def weights(self) -> List[float]:
        """Relative service weights per queue (used by buffer managers).

        Defaults to equal weights; weighted schedulers override this so
        that DynaQ/PQL/PMSB thresholds respect the scheduling policy.
        """
        return [1.0] * self.num_queues

    def set_weights(self, weights: Sequence[float]) -> None:
        """Replace the per-queue weights at runtime.

        Supports the mid-run reconfiguration fault (an operator changing
        queue weights on a live switch).  Weighted schedulers override
        this; the base class refuses because it has no weights to change.
        """
        raise ConfigurationError(
            f"{type(self).__name__} does not support runtime weight "
            "reconfiguration")

    def _check_weight_count(self, weights: List[float]) -> List[float]:
        """Shared ``set_weights`` guard: one weight per existing queue."""
        if len(weights) != self.num_queues:
            raise ConfigurationError(
                f"expected {self.num_queues} weights, got {len(weights)}")
        return weights


def validate_weights(weights: Sequence[float]) -> List[float]:
    """Check that ``weights`` are positive and return them as a list.

    Raises :class:`~repro.sim.errors.ConfigurationError` (a
    ``ValueError`` subclass) so that a zero, negative, or all-zero weight
    vector fails loudly at configuration time instead of surfacing as a
    ``ZeroDivisionError`` at the first enqueue.
    """
    result = list(weights)
    if not result:
        raise ConfigurationError("weights must be non-empty")
    for weight in result:
        if weight <= 0:
            raise ConfigurationError(
                f"weights must be positive, got {result}")
    return result
