"""Strict Priority Queueing and the SPQ/DRR hybrid.

SPQ always serves the lowest-indexed non-empty queue.  The hybrid mirrors
the paper's dynamic-flow configuration: queue 0 is a shared high-priority
SPQ queue (fed by PIAS with the first 100 KB of every flow) and the
remaining queues are dedicated DRR service queues served only when the SPQ
queue is empty.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ...sim.errors import ConfigurationError
from .base import QueueView, Scheduler, validate_weights
from .drr import DRRScheduler


class SPQScheduler(Scheduler):
    """Pure strict priority: queue 0 is highest priority."""

    def __init__(self, num_queues: int,
                 weights: Optional[Sequence[float]] = None) -> None:
        super().__init__(num_queues=num_queues)
        if weights is None:
            self._weights = [1.0] * num_queues
        else:
            self._weights = validate_weights(weights)
            if len(self._weights) != num_queues:
                raise ConfigurationError(
                    "weights length must equal num_queues")

    @property
    def weights(self) -> List[float]:
        return list(self._weights)

    def set_weights(self, weights: Sequence[float]) -> None:
        """Swap the nominal weights (SPQ service order is unaffected)."""
        self._weights = self._check_weight_count(validate_weights(weights))

    def select(self, queues: QueueView) -> Optional[int]:
        for index in range(self.num_queues):
            if not queues.queue_empty(index):
                return index
        return None


class _OffsetQueueView:
    """Expose queues ``[offset, offset+n)`` of a port as queues ``[0, n)``.

    Lets the embedded DRR scheduler of the hybrid operate on the low-priority
    queues without knowing about the SPQ queue in front of them.
    """

    __slots__ = ("_queues", "_offset")

    def __init__(self, queues: QueueView, offset: int) -> None:
        self._queues = queues
        self._offset = offset

    def queue_empty(self, index: int) -> bool:
        return self._queues.queue_empty(index + self._offset)

    def head_size(self, index: int) -> int:
        return self._queues.head_size(index + self._offset)


class SPQDRRScheduler(Scheduler):
    """SPQ over DRR: queues ``[0, num_high)`` strict, the rest DRR.

    This is the paper's "SPQ (1 queue) / DRR (N queues)" switch
    configuration used in every FCT experiment.
    """

    def __init__(self, num_high: int, drr_quanta: Sequence[float]) -> None:
        if num_high < 1:
            raise ConfigurationError(
                "need at least one strict-priority queue")
        quanta = validate_weights(drr_quanta)
        super().__init__(num_queues=num_high + len(quanta))
        self.num_high = num_high
        self.drr = DRRScheduler(quanta)

    def bind_clock(self, clock) -> None:
        """Forward the simulation clock to the embedded DRR scheduler."""
        self.drr.bind_clock(clock)

    @property
    def weights(self) -> List[float]:
        # The SPQ queue has no fair-share weight; buffer managers treat it
        # like any other queue, so give it one quantum's worth of weight.
        high = [max(self.drr.quanta)] * self.num_high
        return high + list(self.drr.quanta)

    def set_weights(self, weights: Sequence[float]) -> None:
        """Reconfigure the DRR quanta; the SPQ entries are positional
        placeholders (strict-priority service ignores weights)."""
        self._check_weight_count(validate_weights(weights))
        self.drr.set_weights(weights[self.num_high:])

    def on_enqueue(self, index: int) -> None:
        if index >= self.num_high:
            self.drr.on_enqueue(index - self.num_high)

    def select(self, queues: QueueView) -> Optional[int]:
        for index in range(self.num_high):
            if not queues.queue_empty(index):
                return index
        low = self.drr.select(_OffsetQueueView(queues, self.num_high))
        if low is None:
            return None
        return low + self.num_high
