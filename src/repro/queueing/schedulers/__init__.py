"""Work-conserving packet schedulers: FIFO, DRR, WRR, SPQ, SPQ/DRR."""

from .base import QueueView, Scheduler, validate_weights
from .drr import DRRScheduler
from .fifo import FIFOScheduler
from .spq import SPQDRRScheduler, SPQScheduler
from .wfq import WFQScheduler
from .wrr import WRRScheduler

__all__ = [
    "QueueView",
    "Scheduler",
    "validate_weights",
    "DRRScheduler",
    "FIFOScheduler",
    "SPQDRRScheduler",
    "SPQScheduler",
    "WFQScheduler",
    "WRRScheduler",
]
