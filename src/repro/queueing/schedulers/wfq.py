"""Weighted Fair Queueing (packet-by-packet GPS approximation).

The idealised fair scheduler DRR approximates.  Each packet gets a
*virtual finish time*

    F = max(V, F_prev_of_queue) + size / weight

where ``V`` is the system virtual time (advanced to the finish time of
the last served packet in this O(1)-virtual-time simplification — the
"start-time fair queueing"-flavoured variant that avoids tracking the
GPS fluid system).  The port serves the queue whose head has the
smallest finish time.  WFQ gives tighter short-term fairness than DRR at
the cost of a priority computation per dequeue — the classic trade the
paper's §II background takes as given.

Included for scheduler-coverage completeness; the paper's experiments
use DRR/WRR/SPQ, and all buffer managers run unchanged under WFQ
(`tests/test_matrix.py` exercises the combinations).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .base import QueueView, Scheduler, validate_weights


class WFQScheduler(Scheduler):
    """Virtual-finish-time weighted fair queueing."""

    def __init__(self, weights: Sequence[float]) -> None:
        weight_list = validate_weights(weights)
        super().__init__(num_queues=len(weight_list))
        self._weights = weight_list
        self._virtual_time = 0.0
        self._queue_finish: List[float] = [0.0] * self.num_queues
        # Finish tags of packets currently in each queue, FIFO order.
        self._tags: List[List[float]] = [[] for _ in range(self.num_queues)]

    @property
    def weights(self) -> List[float]:
        return list(self._weights)

    def set_weights(self, weights: Sequence[float]) -> None:
        """Swap the weights mid-run; already-tagged packets keep their
        finish times (they were priced under the old weights)."""
        self._weights = self._check_weight_count(validate_weights(weights))

    def on_enqueue(self, index: int) -> None:
        # The packet's size is not visible at on_enqueue time through the
        # scheduler interface; tag lazily in select() instead.
        pass

    def _ensure_tag(self, queues: QueueView, index: int) -> None:
        """Tag the head packet of ``index`` if it has no finish time yet.

        Tags are assigned in FIFO order as packets become heads, which is
        equivalent to tagging at enqueue for per-queue FIFO service.
        """
        if not self._tags[index] and not queues.queue_empty(index):
            size = queues.head_size(index)
            start = max(self._virtual_time, self._queue_finish[index])
            finish = start + size / self._weights[index]
            self._tags[index].append(finish)
            self._queue_finish[index] = finish

    def select(self, queues: QueueView) -> Optional[int]:
        best_index: Optional[int] = None
        best_finish = 0.0
        for index in range(self.num_queues):
            if queues.queue_empty(index):
                # A drained queue's pending tag (from a dropped packet
                # scenario) is stale; clear it.
                self._tags[index].clear()
                continue
            self._ensure_tag(queues, index)
            finish = self._tags[index][0]
            if best_index is None or finish < best_finish:
                best_index = index
                best_finish = finish
        if best_index is None:
            return None
        self._tags[best_index].pop(0)
        self._virtual_time = max(self._virtual_time, best_finish)
        return best_index
