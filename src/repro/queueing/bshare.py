"""BShare: reserved-plus-shared balanced buffer sharing.

A deterministic reduction of the BShare scheme (arXiv:2605.24178):
the buffer is split into a *reserved* region — a per-queue guarantee
sized ``reserve_fraction * B`` and divided by scheduler weight — and a
*shared* region governed by a Choudhury-Hahne dynamic threshold over
the shared free space only:

    r_i         = reserve_fraction * B * w_i / sum(w)
    shared_q_i  = max(q_i - r_i, 0)
    shared_free = S - sum_j shared_q_j,  S = (1 - reserve_fraction) * B
    T_i(t)      = r_i + alpha * max(shared_free, 0)

A queue below its reservation is therefore always admitted while the
port has room (burst absorption with a hard floor), while occupancy
above the reservation competes DT-style for the shared pool — so no
queue can starve another out of its guarantee no matter how greedy the
traffic mix.  The policy is stateless beyond the port occupancy it
observes, which keeps it trivially snapshot-safe and
FAST/REFERENCE-identical.
"""

from __future__ import annotations

from typing import List

from ..net.packet import Packet
from .base import BufferManager, Decision, PortView


class BShareBuffer(BufferManager):
    """Per-queue reservations plus a DT-governed shared pool."""

    name = "BShare"

    def __init__(self, alpha: float = 1.0,
                 reserve_fraction: float = 0.25) -> None:
        super().__init__()
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        if not 0 <= reserve_fraction < 1:
            raise ValueError(
                f"reserve_fraction must be in [0, 1), "
                f"got {reserve_fraction}")
        self.alpha = alpha
        self.reserve_fraction = reserve_fraction
        self.reserved_bytes: List[int] = []
        self.shared_bytes = 0
        self._drop_threshold = (Decision.dropped("bshare threshold")
                                if self._accept is not None else None)

    def attach(self, port: PortView) -> None:
        super().attach(port)
        weights = port.queue_weights()
        total = sum(weights)
        reserve = self.reserve_fraction * port.buffer_bytes
        self.reserved_bytes = [
            int(reserve * weight / total) for weight in weights
        ]
        self.shared_bytes = port.buffer_bytes - sum(self.reserved_bytes)

    def current_threshold(self, queue_index: int) -> float:
        """The queue's admission limit at the current occupancy."""
        port = self.port
        reserved = self.reserved_bytes
        shared_used = 0
        for index in range(port.num_queues):
            shared_used += max(port.queue_bytes(index) - reserved[index], 0)
        shared_free = max(self.shared_bytes - shared_used, 0)
        return reserved[queue_index] + self.alpha * shared_free

    def admit(self, packet: Packet, queue_index: int) -> Decision:
        port = self.port
        occupancy = self._queue_occupancy
        reserved = self.reserved_bytes
        queue_len = (occupancy[queue_index] if occupancy is not None
                     else port.queue_bytes(queue_index))
        size = packet.size
        total = (port._total_bytes if self._direct_total
                 else port.total_bytes())
        if total + size > port.buffer_bytes:
            self.drops += 1
            return self._drop_full or Decision.dropped("port buffer full")
        # The reservation is a hard floor: under it, admission only
        # depends on the port having room (checked above).
        if queue_len + size <= reserved[queue_index]:
            return self._accept or Decision.accepted()
        shared_used = 0
        if occupancy is not None:
            for index, occupied in enumerate(occupancy):
                shared_used += max(occupied - reserved[index], 0)
        else:
            for index in range(port.num_queues):
                shared_used += max(
                    port.queue_bytes(index) - reserved[index], 0)
        shared_free = max(self.shared_bytes - shared_used, 0)
        limit = reserved[queue_index] + self.alpha * shared_free
        if queue_len + size > limit:
            self.drops += 1
            return (self._drop_threshold
                    or Decision.dropped("bshare threshold"))
        return self._accept or Decision.accepted()
