"""Choudhury-Hahne Dynamic Threshold (DT) algorithm.

The classic shared-buffer policy the paper's related-work section
discusses: every queue's admission limit is a multiple of the *unused*
buffer,

    T(t) = alpha * (B - sum_i q_i(t)),

applied here across the service queues of one port.  DT adapts to the
number of active queues but — as the paper argues — it cannot provide
*weighted* fairness: aggressive queues with more flows still converge to
the same threshold as meek ones, and with equal thresholds the queue that
fills faster wins.  Included as a comparator for the ablation benches.
"""

from __future__ import annotations

from ..net.packet import Packet
from .base import BufferManager, Decision


class DynamicThresholdBuffer(BufferManager):
    """Per-queue limit proportional to the remaining free buffer."""

    name = "DT"

    def __init__(self, alpha: float = 1.0) -> None:
        super().__init__()
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.alpha = alpha

    def current_threshold(self) -> float:
        """``alpha * (B - total occupancy)`` — identical for every queue."""
        free = self.port.buffer_bytes - self.port.total_bytes()
        return self.alpha * max(free, 0)

    def admit(self, packet: Packet, queue_index: int) -> Decision:
        if (self.port.queue_bytes(queue_index) + packet.size
                > self.current_threshold()):
            self.drops += 1
            return Decision.dropped("dynamic threshold")
        drop = self._port_tail_drop(packet)
        if drop is not None:
            return drop
        return Decision.accepted()
